"""Typed HTTP client SDK mirroring the in-process service facade.

:class:`ProFIPyClient` exposes the *same method surface* as
:class:`repro.service.service.ProFIPyService` — ``save_model`` /
``load_model`` / ``submit_campaign`` / ``job`` / ``wait`` / ``cancel`` /
``report_text`` / ``experiments`` / ``generate_regression_tests`` — so
callers swap the in-process facade for a remote server without code
changes::

    service = ProFIPyService("workspace")          # in-process
    service = ProFIPyClient("http://host:8080")    # remote, same calls

Against a tenant-enabled server, pass the tenant's bearer token —
``ProFIPyClient(url, token="s3cret")`` — the remote twin of
``ProFIPyService.for_tenant(name)``.

Equivalence guarantees (the contract tests in
``tests/test_service_api_contract.py`` enforce them):

* identical return types (:class:`Job`, :class:`FaultModel`,
  :class:`ExperimentResult` lists sorted by experiment id), including
  the shard-aware ``Job.progress`` snapshot
  (``experiments_done``/``experiments_total`` + per-shard states) a
  running campaign publishes;
* identical exception types — the wire error codes map back to what the
  in-process facade raises (``unknown_job``/``unknown_model`` →
  ``KeyError``, ``missing_artifact`` → ``FileNotFoundError``,
  ``timeout`` → ``TimeoutError``, ``invalid_request`` → ``ValueError``,
  ``unauthorized``/``forbidden`` → ``PermissionError`` subclasses,
  ``quota_exceeded`` → ``QuotaExceededError``);
* identical campaign behaviour, because the server runs the exact same
  core with a lossless config round-trip.

``wait`` long-polls (bounded requests in a loop, no busy-polling) and
``experiments`` consumes the NDJSON stream with the same
last-record-wins / skip-meta semantics as the on-disk reader.

Only the stdlib is used (``urllib``); the client has no dependency on a
running event loop or third-party HTTP stack.
"""

from __future__ import annotations

import http.client
import json
import time
import urllib.error
import urllib.request
from pathlib import Path

from repro.analysis.classify import ClassificationRule
from repro.analysis.metrics import ComponentSpec
from repro.common.retry import RetryPolicy, retry_call
from repro.faultmodel.model import FaultModel
from repro.orchestrator.campaign import CampaignConfig
from repro.orchestrator.experiment import (
    STATUS_HARNESS_ERROR,
    ExperimentResult,
)
from repro.service.api import (
    API_VERSION,
    APIError,
    ExperimentPage,
    JobView,
    campaign_config_to_dict,
    component_to_dict,
    exception_for,
    rule_to_dict,
)
from repro.service.jobs import Job

#: Per-request long-poll bound; overall waits loop over it.
WAIT_POLL_SECONDS = 30.0


class TransportError(ConnectionError):
    """The server could not be reached or the connection died mid-request
    — refused/reset sockets, DNS failure, timeouts, torn HTTP framing.

    Distinct from an HTTP-level :class:`APIError`: a transport error
    means the server never (verifiably) answered, so retrying an
    idempotent request is safe, while an HTTP error is an authoritative
    answer that must not be retried.  Subclasses :class:`ConnectionError`
    so existing ``OSError``-based failover handling keeps working.
    """


#: Default retry for idempotent GETs: a couple of quick, jittered
#: retries smooth over connection blips without masking a dead server
#: for long.  Writes (POST/PUT) never retry at the transport layer —
#: ``POST /v1/shards`` in particular must stay exactly-once on the wire.
DEFAULT_GET_RETRY = RetryPolicy(attempts=3, base_delay=0.05,
                                max_delay=0.5, jitter=0.25)


class ProFIPyClient:
    """Remote fault-injection-as-a-service, same surface as the
    in-process :class:`~repro.service.service.ProFIPyService`."""

    def __init__(self, base_url: str, timeout: float = 60.0,
                 retry_policy: RetryPolicy | None = DEFAULT_GET_RETRY,
                 token: str | None = None) -> None:
        self.base_url = base_url.rstrip("/")
        self.timeout = timeout
        #: Applied to idempotent GETs only; ``None`` disables retries.
        self.retry_policy = retry_policy
        #: Bearer token for tenant-enabled servers; sent as
        #: ``Authorization: Bearer <token>`` on every request.  ``None``
        #: for open single-user servers.
        self.token = token

    # -- transport ---------------------------------------------------------------

    def _request(self, method: str, path: str,
                 payload: dict | bytes | None = None,
                 timeout: float | None = None) -> tuple[int, bytes, str]:
        body = None
        headers = {"Accept": "application/json"}
        if self.token is not None:
            headers["Authorization"] = f"Bearer {self.token}"
        if isinstance(payload, bytes):
            # Raw-body endpoints (blob uploads) ship the bytes verbatim.
            body = payload
            headers["Content-Type"] = "application/octet-stream"
        elif payload is not None:
            body = json.dumps(payload).encode("utf-8")
            headers["Content-Type"] = "application/json"
        request_timeout = timeout or self.timeout
        # Only idempotent GETs (status, stream tails, listings) retry:
        # a retried non-idempotent write could double-execute server
        # side — a resubmitted shard, a duplicate campaign.
        policy = self.retry_policy if method == "GET" else None
        if policy is None:
            return self._send(method, path, body, headers, request_timeout)
        return retry_call(
            lambda attempt_timeout: self._send(
                method, path, body, headers,
                attempt_timeout or request_timeout,
            ),
            policy=policy, retry_on=(TransportError,),
        )

    def _send(self, method: str, path: str, body: bytes | None,
              headers: dict, timeout: float) -> tuple[int, bytes, str]:
        url = self.base_url + path
        request = urllib.request.Request(url, data=body,
                                         headers=dict(headers),
                                         method=method)
        try:
            with urllib.request.urlopen(
                request, timeout=timeout
            ) as response:
                return (response.status, response.read(),
                        response.headers.get("Content-Type", ""))
        except urllib.error.HTTPError as error:
            # HTTP-level: the server is up and answered.  Authoritative —
            # map the wire code back to the in-process exception type.
            raw = error.read()
            try:
                data = json.loads(raw.decode("utf-8"))
            except (UnicodeDecodeError, ValueError):
                data = {}
            raise exception_for(
                APIError.from_dict(data, http_status=error.code)
            ) from None
        except urllib.error.URLError as error:
            raise TransportError(
                f"{method} {url}: {error.reason}"
            ) from error
        except (http.client.HTTPException, ConnectionError,
                TimeoutError) as error:
            raise TransportError(
                f"{method} {url}: {type(error).__name__}: {error}"
            ) from error

    def _json(self, method: str, path: str, payload: dict | None = None,
              timeout: float | None = None) -> dict:
        _status, raw, _ctype = self._request(method, path, payload,
                                             timeout=timeout)
        return json.loads(raw.decode("utf-8"))

    def ping(self) -> dict:
        """Server identity and API version (connectivity check)."""
        info = self._json("GET", "/v1/ping")
        if info.get("api_version") != API_VERSION:
            raise APIError(
                "invalid_request",
                f"server speaks API {info.get('api_version')!r}, "
                f"this client speaks {API_VERSION!r}",
            )
        return info

    # -- fault model registry ------------------------------------------------

    def save_model(self, model: FaultModel) -> Path:
        """Store a fault model in the server's registry; returns the
        *server-side* path of the stored JSON."""
        result = self._json("PUT", f"/v1/models/{model.name}",
                            model.to_dict())
        return Path(result["path"])

    def import_model(self, path: str | Path) -> FaultModel:
        """Import a local fault model JSON into the server's registry."""
        model = FaultModel.load(path)
        self.save_model(model)
        return model

    def load_model(self, name: str) -> FaultModel:
        """A stored model by name, falling back to the pre-defined ones
        (resolved server-side, exactly like the in-process facade)."""
        return FaultModel.from_dict(self._json("GET", f"/v1/models/{name}"))

    def list_models(self) -> list[str]:
        """Every loadable model name — stored **and** pre-defined —
        mirroring :meth:`ProFIPyService.list_models`."""
        result = self._json("GET", "/v1/models")
        merged = result.get("models")
        if merged is None:
            # Pre-tenancy servers sent only the split lists.
            merged = sorted(set(result["stored"])
                            | set(result.get("predefined", [])))
        return list(merged)

    def stored_models(self) -> list[str]:
        """Names of models stored in the server-side registry (the
        pre-defined ones are not listed here, but always loadable)."""
        return list(self._json("GET", "/v1/models")["stored"])

    # -- campaign submission -----------------------------------------------------

    def submit_campaign(
        self,
        config: CampaignConfig,
        rules: list[ClassificationRule] | None = None,
        components: list[ComponentSpec] | None = None,
        block: bool = True,
        resume_from: str | None = None,
    ) -> Job:
        """Submit a campaign to the server; mirrors the in-process call.

        The config round-trips losslessly over the wire, so the server
        runs exactly the campaign this process would have run (note the
        paths inside — target dir, workspace — resolve on the *server's*
        filesystem).  With ``block=True`` the call long-polls until the
        job is terminal.
        """
        payload = {
            "config": campaign_config_to_dict(config),
            "rules": [rule_to_dict(rule) for rule in (rules or [])],
            "components": [component_to_dict(component)
                           for component in (components or [])],
            "resume_from": resume_from,
            "block": False,
        }
        job = self._to_job(self._json("POST", "/v1/campaigns", payload))
        if block:
            return self.wait(job.job_id)
        return job

    def job(self, job_id: str) -> Job:
        """One job's lifecycle view; ``job.progress`` carries the live
        shard-aware progress snapshot while the campaign runs."""
        return self._to_job(self._json("GET", f"/v1/jobs/{job_id}"))

    def job_progress(self, job_id: str) -> dict | None:
        """The job's latest progress snapshot (mirrors
        :meth:`ProFIPyService.job_progress`)."""
        return self.job(job_id).progress

    def list_jobs(self) -> list[Job]:
        return [self._to_job(view)
                for view in self._json("GET", "/v1/jobs")["jobs"]]

    def wait(self, job_id: str, timeout: float | None = None) -> Job:
        """Block until the job finishes (long-polling) and return it.

        Raises :class:`TimeoutError` when ``timeout`` seconds pass with
        the job still queued/running, like the in-process facade.
        """
        deadline = None if timeout is None else time.monotonic() + timeout
        while True:
            remaining = None
            if deadline is not None:
                remaining = deadline - time.monotonic()
                if remaining <= 0:
                    raise TimeoutError(
                        f"job {job_id} still running after {timeout}s"
                    )
            poll = WAIT_POLL_SECONDS if remaining is None \
                else min(WAIT_POLL_SECONDS, max(remaining, 0.05))
            try:
                view = self._json(
                    "GET", f"/v1/jobs/{job_id}/wait?timeout={poll:g}",
                    timeout=poll + self.timeout,
                )
            except TimeoutError:
                if deadline is not None and time.monotonic() >= deadline:
                    raise
                continue
            return self._to_job(view)

    def cancel(self, job_id: str) -> Job:
        """Request cancellation of a queued or running job (idempotent)."""
        return self._to_job(self._json("POST", f"/v1/jobs/{job_id}/cancel"))

    # -- results ---------------------------------------------------------------------

    def report_text(self, job_id: str) -> str:
        _status, raw, _ctype = self._request(
            "GET", f"/v1/jobs/{job_id}/report"
        )
        return raw.decode("utf-8")

    def result_summary(self, job_id: str) -> dict:
        return self._json("GET", f"/v1/jobs/{job_id}/summary")

    def experiments(self, job_id: str) -> list[ExperimentResult]:
        """Recorded experiments of a job, sorted by experiment id.

        Consumes the NDJSON stream (the raw ``experiments.jsonl`` file)
        applying the reader semantics of the on-disk stream: meta and
        truncated lines are skipped, the last record per experiment id
        wins.
        """
        from repro.orchestrator.stream import latest_entries

        _status, raw, _ctype = self._request(
            "GET", f"/v1/jobs/{job_id}/experiments.ndjson"
        )
        entries = latest_entries(raw.decode("utf-8").splitlines())
        return sorted(
            (ExperimentResult.from_dict(entry)
             for entry in entries.values()),
            key=lambda experiment: experiment.experiment_id,
        )

    def experiments_page(self, job_id: str, offset: int = 0,
                         limit: int = 100) -> ExperimentPage:
        """One page of experiment dicts (the paginated JSON endpoint,
        for UIs that render incrementally)."""
        return ExperimentPage.from_dict(self._json(
            "GET",
            f"/v1/jobs/{job_id}/experiments?offset={offset}&limit={limit}",
        ))

    def recorded_ids(self, job_id: str) -> set[str]:
        """Resumable ids recorded so far (harness errors excluded,
        mirroring the stream reader used by campaign resume)."""
        return {
            experiment.experiment_id
            for experiment in self.experiments(job_id)
            if experiment.status != STATUS_HARNESS_ERROR
        }

    # -- remote-backend worker endpoints ----------------------------------------

    def submit_shard(self, payload: dict) -> dict:
        """Dispatch one shard payload to this worker host
        (``POST /v1/shards``); returns the shard's status view (carrying
        the worker-assigned ``shard_id``).  Mirrors
        :meth:`ProFIPyService.submit_shard` — a malformed payload raises
        ``ValueError``."""
        return self._json("POST", "/v1/shards", payload)

    def shard_status(self, shard_id: str) -> dict:
        """The shard's ``{state, total, recorded, cancelled, error}``
        status view; raises ``KeyError`` for an unknown shard (e.g. a
        worker that restarted and forgot it)."""
        return self._json("GET", f"/v1/shards/{shard_id}")

    def list_shards(self) -> list[dict]:
        """Status views of every shard this worker accepted."""
        return list(self._json("GET", "/v1/shards")["shards"])

    def cancel_shard(self, shard_id: str) -> dict:
        """Request cooperative cancellation of a running shard
        (idempotent); the worker observes it between experiments."""
        return self._json("POST", f"/v1/shards/{shard_id}/cancel")

    def shard_stream(self, shard_id: str, offset: int = 0) -> bytes:
        """The shard stream's newline-aligned NDJSON tail from byte
        ``offset``.  Only complete records are returned, so the caller
        may append the bytes verbatim to a local mirror and poll again
        at ``offset + len(returned)``."""
        _status, raw, _ctype = self._request(
            "GET", f"/v1/shards/{shard_id}/stream.ndjson?offset={int(offset)}"
        )
        return raw

    # -- content-addressed blobs --------------------------------------------------

    def get_blob(self, digest: str) -> bytes:
        """One blob's raw content (``GET /v1/blobs/{digest}``); raises
        ``KeyError`` for a blob the host lacks (``unknown_blob``),
        mirroring :meth:`ProFIPyService.blob_path` + read."""
        _status, raw, _ctype = self._request("GET", f"/v1/blobs/{digest}")
        return raw

    def put_blob(self, digest: str, data: bytes) -> dict:
        """Upload one content-addressed blob (``PUT /v1/blobs/{digest}``,
        raw body).  Idempotent — re-putting a stored blob is a no-op —
        and verified: content that does not hash to ``digest`` raises
        ``ValueError``.  Safe to retry despite being a write, but the
        transport keeps its no-retry-on-writes policy for uniformity."""
        return self._json("PUT", f"/v1/blobs/{digest}", data)

    def missing_blobs(self, digests) -> list[str]:
        """Which of ``digests`` the host lacks
        (``POST /v1/blobs/missing``) — upload exactly those before
        submitting a manifest-bearing shard."""
        result = self._json("POST", "/v1/blobs/missing",
                            {"digests": sorted(set(digests))})
        return list(result["missing"])

    # -- worker registry (fleet membership) --------------------------------------

    def register_worker(self, payload: dict) -> dict:
        """Join (or re-join) the coordinator's fleet
        (``POST /v1/workers/register``); returns the lease view carrying
        the coordinator-assigned ``worker_id`` and ``lease_seconds``.
        Mirrors :meth:`ProFIPyService.register_worker`."""
        return self._json("POST", "/v1/workers/register", payload)

    def worker_heartbeat(self, worker_id: str, load: dict | None = None) -> dict:
        """Renew the worker's lease, carrying its live load
        (``POST /v1/workers/{id}/heartbeat``).  Raises ``KeyError`` for
        an id the coordinator never saw (``unknown_worker``) and
        :class:`~repro.service.registry.LeaseExpiredError` for an
        evicted or fenced lease (``lease_expired``) — the agent
        re-registers on either."""
        return self._json(
            "POST", f"/v1/workers/{worker_id}/heartbeat", {"load": load}
        )

    def list_workers(self) -> list[dict]:
        """The fleet as the coordinator sees it — one view per worker
        with ``state`` (alive/suspect/dead), live load, and lease age."""
        return list(self._json("GET", "/v1/workers")["workers"])

    # -- cross-campaign statistics ---------------------------------------------

    def stats_campaigns(self) -> list[dict]:
        """Campaigns indexed in the server's statistical result store."""
        return list(self._json("GET", "/v1/stats/campaigns")["campaigns"])

    def stats_aggregate(self, campaign: str | None = None,
                        spec: str | None = None,
                        file: str | None = None,
                        component: str | None = None,
                        confidence: float | None = None) -> dict:
        """Per-failure-mode Wilson estimates across stored campaigns."""
        from urllib.parse import urlencode

        params = {key: value for key, value in (
            ("campaign", campaign), ("spec", spec), ("file", file),
            ("component", component), ("confidence", confidence),
        ) if value is not None}
        path = "/v1/stats/aggregate"
        if params:
            path += "?" + urlencode(params)
        return self._json("GET", path)

    def generate_regression_tests(self, job_id: str,
                                  dest_dir: str | Path) -> list[Path]:
        """Generate regression tests server-side and materialize them
        locally under ``dest_dir``; returns the local paths."""
        result = self._json("POST", f"/v1/jobs/{job_id}/regression-tests")
        dest_dir = Path(dest_dir)
        dest_dir.mkdir(parents=True, exist_ok=True)
        written = []
        for test in result["tests"]:
            path = dest_dir / test["filename"]
            path.write_text(test["content"], encoding="utf-8")
            written.append(path)
        return written

    def _to_job(self, view: dict) -> Job:
        return JobView.from_dict(view).to_job()
