"""Content-addressed target shipping: blob store + image manifests.

The remote backend used to ship filesystem *paths* inside its shard
payloads, so every ``profipy worker`` had to mount the coordinator's
disk.  This module replaces that identity with content:

* :class:`BlobStore` — files keyed by ``sha256(content)``, written with
  the same atomic discipline as ``job.json`` (unique temp + fsync +
  ``os.replace``), so a killed writer never leaves a torn blob and
  concurrent writers of the same digest are safe (the bytes are
  identical by construction).  An optional ``max_bytes`` bound turns a
  store into a worker-side LRU cache: least-recently-used blobs are
  evicted once the bound is exceeded (the worker just re-fetches them).

* :class:`ImageManifest` — the content-addressed identity of a staged
  :class:`~repro.sandbox.image.SandboxImage`: sorted
  ``{relpath: {digest, mode, size}}`` entries plus the image env.  The
  manifest's canonical JSON bytes are deterministic, so manifests of
  identical trees are byte-identical and ``tree_digest`` (sha256 over
  those bytes) *is* the image's identity — a re-campaign over an
  unchanged tree ships nothing but digests.  ``materialize`` rebuilds
  the tree byte-identically (permission bits included) from any store
  holding the blobs, which is what frees workers from the coordinator's
  filesystem.
"""

from __future__ import annotations

import hashlib
import json
import os
import re
import stat
from dataclasses import dataclass, field
from pathlib import Path

from repro.common.fsutil import IGNORED_DIRS, atomic_write_bytes, remove_tree

_DIGEST_RE = re.compile(r"[0-9a-f]{64}")

#: Permission bits preserved through a manifest round-trip.  Only the
#: classic rwx bits travel: setuid/sticky bits on a fault-injection
#: target are at best an accident, and dropping them keeps materialized
#: trees safe to run from.
_MODE_MASK = 0o777


def blob_digest(data: bytes) -> str:
    """The store key for ``data``: its sha256 hex digest."""
    return hashlib.sha256(data).hexdigest()


def validate_digest(digest: object) -> str:
    """``digest`` as a normalized store key, or ``ValueError``."""
    if not isinstance(digest, str) or not _DIGEST_RE.fullmatch(
            digest.lower()):
        raise ValueError(
            f"blob digest must be 64 hex chars, got {digest!r}"
        )
    return digest.lower()


class BlobStore:
    """Content-addressed file store keyed by ``sha256(content)``.

    Layout: ``<root>/<digest[:2]>/<digest>`` (fanned out so one
    directory never holds the whole corpus).  Writes are atomic and
    idempotent — putting bytes that are already stored is a no-op apart
    from an LRU touch.  With ``max_bytes`` set, :meth:`put_bytes` evicts
    least-recently-used blobs past the bound (recency is the file
    mtime, bumped on every get/put).
    """

    def __init__(self, root: str | Path,
                 max_bytes: int | None = None) -> None:
        if max_bytes is not None and max_bytes < 1:
            raise ValueError(f"max_bytes must be >= 1, got {max_bytes}")
        self.root = Path(root)
        self.root.mkdir(parents=True, exist_ok=True)
        self.max_bytes = max_bytes

    def path(self, digest: str) -> Path:
        digest = validate_digest(digest)
        return self.root / digest[:2] / digest

    def has(self, digest: str) -> bool:
        return self.path(digest).is_file()

    def missing(self, digests) -> list[str]:
        """The sorted subset of ``digests`` this store does not hold —
        the batched answer behind ``POST /v1/blobs/missing``."""
        return sorted({validate_digest(digest) for digest in digests
                       if not self.has(digest)})

    def put_bytes(self, data: bytes, digest: str | None = None) -> str:
        """Store ``data``; returns its digest.

        A caller-supplied ``digest`` (the PUT URL's) is verified against
        the content — a mismatch is a corrupt upload and raises
        ``ValueError`` rather than poisoning the store.
        """
        if not isinstance(data, bytes):
            raise ValueError("blob content must be bytes")
        actual = blob_digest(data)
        if digest is not None and validate_digest(digest) != actual:
            raise ValueError(
                f"blob content hashes to {actual}, not the declared "
                f"digest {digest}"
            )
        path = self.path(actual)
        if path.is_file():
            self._touch(path)
        else:
            atomic_write_bytes(path, data)
            if self.max_bytes is not None:
                self.evict()
        return actual

    def put_file(self, source: str | Path) -> str:
        return self.put_bytes(Path(source).read_bytes())

    def get_bytes(self, digest: str) -> bytes:
        """The blob's content; ``KeyError`` when absent (the API layer
        maps it to ``unknown_blob``)."""
        path = self.path(digest)
        try:
            data = path.read_bytes()
        except OSError:
            raise KeyError(f"unknown blob {validate_digest(digest)}") \
                from None
        self._touch(path)
        return data

    def total_bytes(self) -> int:
        return sum(path.stat().st_size for path in self._iter_blobs())

    def evict(self) -> list[str]:
        """Drop least-recently-used blobs until the store fits
        ``max_bytes``; returns the evicted digests.  No-op without a
        bound (coordinator-side stores keep everything)."""
        if self.max_bytes is None:
            return []
        blobs = []
        for path in self._iter_blobs():
            try:
                info = path.stat()
            except OSError:
                continue
            blobs.append((info.st_mtime, path.name, path, info.st_size))
        total = sum(size for _mtime, _name, _path, size in blobs)
        evicted: list[str] = []
        # Oldest mtime first; the name tie-break keeps eviction
        # deterministic when a burst of puts lands in one clock tick.
        # The most recent blob is never evicted — a single blob larger
        # than the bound must stay usable by the shard that fetched it.
        for _mtime, name, path, size in sorted(blobs)[:-1]:
            if total <= self.max_bytes:
                break
            try:
                path.unlink()
            except OSError:
                continue
            total -= size
            evicted.append(name)
        return evicted

    def _iter_blobs(self):
        for shard_dir in self.root.iterdir():
            if not shard_dir.is_dir():
                continue
            for path in shard_dir.iterdir():
                if path.is_file() and _DIGEST_RE.fullmatch(path.name):
                    yield path

    @staticmethod
    def _touch(path: Path) -> None:
        try:
            os.utime(path)
        except OSError:
            pass  # recency is advisory; a read-only cache still works


@dataclass
class ImageManifest:
    """Content-addressed identity of a staged sandbox image tree.

    ``entries`` maps each file's POSIX relpath to its ``digest`` /
    ``mode`` (permission bits, so ``+x`` workload scripts survive the
    wire) / ``size``.  Iteration order is irrelevant: the canonical
    form sorts keys, so identical trees always produce byte-identical
    manifests and therefore the same :attr:`tree_digest`.
    """

    entries: dict[str, dict] = field(default_factory=dict)
    env: dict[str, str] = field(default_factory=dict)

    @classmethod
    def from_tree(cls, root: str | Path, env: dict[str, str] | None = None,
                  store: BlobStore | None = None) -> "ImageManifest":
        """Snapshot ``root`` (skipping :data:`IGNORED_DIRS`, like the
        staging copy does); with ``store``, every file's blob is
        ingested so the manifest is immediately servable."""
        root = Path(root)
        entries: dict[str, dict] = {}
        for dirpath, dirnames, filenames in os.walk(root):
            dirnames[:] = sorted(name for name in dirnames
                                 if name not in IGNORED_DIRS)
            for name in sorted(filenames):
                path = Path(dirpath) / name
                data = path.read_bytes()
                digest = (store.put_bytes(data) if store is not None
                          else blob_digest(data))
                entries[path.relative_to(root).as_posix()] = {
                    "digest": digest,
                    "mode": stat.S_IMODE(path.stat().st_mode) & _MODE_MASK,
                    "size": len(data),
                }
        return cls(entries=entries, env=dict(env or {}))

    @classmethod
    def from_image(cls, image,
                   store: BlobStore | None = None) -> "ImageManifest":
        """Snapshot a staged :class:`SandboxImage` (tree + env)."""
        return cls.from_tree(image.staging_dir, env=image.env, store=store)

    def canonical_bytes(self) -> bytes:
        """The manifest's deterministic wire form: identical trees →
        identical bytes, which makes :attr:`tree_digest` an identity."""
        return json.dumps(
            {"entries": self.entries, "env": self.env},
            sort_keys=True, separators=(",", ":"),
        ).encode("utf-8")

    @property
    def tree_digest(self) -> str:
        return blob_digest(self.canonical_bytes())

    def digests(self) -> list[str]:
        """Sorted unique blob digests this image needs (the batch a
        dispatcher asks each worker about before uploading)."""
        return sorted({entry["digest"] for entry in self.entries.values()})

    def total_bytes(self) -> int:
        return sum(int(entry["size"]) for entry in self.entries.values())

    def to_dict(self) -> dict:
        return {
            "entries": {relpath: dict(entry)
                        for relpath, entry in self.entries.items()},
            "env": dict(self.env),
            "tree_digest": self.tree_digest,
        }

    @classmethod
    def from_dict(cls, data: dict) -> "ImageManifest":
        if not isinstance(data, dict) or "entries" not in data:
            raise ValueError(
                'image manifest must be an object with an "entries" key'
            )
        entries: dict[str, dict] = {}
        for relpath, entry in dict(data["entries"]).items():
            if not isinstance(relpath, str) or not isinstance(entry, dict):
                raise ValueError(
                    f"malformed manifest entry for {relpath!r}"
                )
            rel = Path(relpath)
            if rel.is_absolute() or ".." in rel.parts:
                # A hostile manifest must not write outside the
                # materialization root.
                raise ValueError(
                    f"manifest relpath escapes the tree: {relpath!r}"
                )
            entries[relpath] = {
                "digest": validate_digest(entry.get("digest")),
                "mode": int(entry.get("mode", 0o644)) & _MODE_MASK,
                "size": int(entry.get("size", 0)),
            }
        manifest = cls(entries=entries, env=dict(data.get("env") or {}))
        declared = data.get("tree_digest")
        if declared is not None and declared != manifest.tree_digest:
            raise ValueError(
                f"manifest declares tree digest {declared}, but its "
                f"entries hash to {manifest.tree_digest}"
            )
        return manifest

    def materialize(self, dest: str | Path, store: BlobStore) -> Path:
        """Rebuild the tree byte-identically under ``dest`` from
        ``store`` (permission bits restored).  A blob the store lacks
        raises ``KeyError`` naming the file — the dispatcher was
        supposed to upload it first."""
        dest = Path(dest)
        remove_tree(dest)
        dest.mkdir(parents=True, exist_ok=True)
        for relpath in sorted(self.entries):
            entry = self.entries[relpath]
            try:
                data = store.get_bytes(entry["digest"])
            except KeyError:
                raise KeyError(
                    f"unknown blob {entry['digest']} (manifest file "
                    f"{relpath!r}); upload it before materializing"
                ) from None
            atomic_write_bytes(dest / relpath, data,
                               mode=int(entry["mode"]) & _MODE_MASK)
        return dest


__all__ = [
    "BlobStore",
    "ImageManifest",
    "blob_digest",
    "validate_digest",
]
