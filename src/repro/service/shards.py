"""Worker-side shard execution for the remote backend (``/v1/shards``).

A ``profipy worker`` host accepts shard payloads — the JSON-plain form
built by :func:`repro.orchestrator.backends.build_shard_payload` — and
runs each through the exact engine a local process worker runs
(:func:`repro.orchestrator.backends._run_shard_worker`), so a shard
executes byte-identically whether it was spawned locally or dispatched
over the wire.

:class:`ShardHost` is the behavioural core behind the worker endpoints:

* ``submit`` rewrites the payload's local-only paths into a private
  per-shard directory under ``<workspace>/shards/<shard_id>/`` (stream,
  cancel flag, sandbox scratch) and starts a daemon thread; at most
  ``max_concurrent`` shards *execute* at a time — excess submissions
  are admitted as ``queued`` and start as slots free (the same
  bounded-admission policy the job scheduler applies to campaigns, so
  N dispatchers cannot oversubscribe one worker host);
* ``status`` reports ``{state, total, recorded, cancelled, error}`` —
  ``recorded`` is the stream's line count, so polling is O(stream), not
  O(json);
* ``stream_path`` exposes the shard's ``experiments.jsonl`` for the
  newline-aligned NDJSON tail endpoint;
* ``cancel`` touches the shard's cancel-flag file, the same cooperative
  between-experiments mechanism the process backend relays.

Shard ids never repeat within a workspace (max-suffix scan over the
shard directories, like the job scheduler's id allocation), so a
dispatcher retrying after a worker restart can never collide with a
previous shard's directory.  The registry itself is in-memory: a
restarted worker answers ``unknown_shard`` for old ids, which the
remote backend treats as a lost worker and fails over.
"""

from __future__ import annotations

import re
import threading
from dataclasses import dataclass, field
from pathlib import Path

_SHARD_ID_RE = re.compile(r"shard-(\d+)")

QUEUED = "queued"
RUNNING = "running"
COMPLETED = "completed"
FAILED = "failed"
CANCELLED = "cancelled"

#: Shards a worker executes concurrently; each shard runs a whole
#: experiment pipeline (sandbox pool included), so a small number
#: saturates a host — queued shards start as slots free.
DEFAULT_MAX_CONCURRENT = 4

#: Payload keys a dispatcher must provide (the wire schema of
#: ``build_shard_payload``; local-only paths are filled in worker-side).
#: The image arrives either as ``image`` (host-local staging paths, the
#: process backend's form) or as ``image_manifest`` (content-addressed,
#: materialized from this worker's blob store) — one of the two is
#: required on top of these.
REQUIRED_PAYLOAD_KEYS = (
    "shard",
    "planned",
    "fault_model",
    "workload",
    "trigger",
    "rounds",
    "campaign_seed",
    "parallelism",
)


@dataclass
class ShardRun:
    """One accepted shard payload and its execution state."""

    shard_id: str
    shard: int
    total: int
    directory: Path
    state: str = QUEUED
    cancelled: bool = False
    error: str = ""
    thread: threading.Thread | None = field(default=None, repr=False)

    @property
    def stream_path(self) -> Path:
        return self.directory / "experiments.jsonl"

    @property
    def cancel_flag(self) -> Path:
        return self.directory / "cancel.flag"


class ShardHost:
    """Accepts and executes shard payloads on behalf of a dispatcher."""

    def __init__(self, shards_dir: str | Path,
                 max_concurrent: int = DEFAULT_MAX_CONCURRENT,
                 blob_store=None) -> None:
        if max_concurrent < 1:
            raise ValueError(
                f"max_concurrent must be >= 1, got {max_concurrent}"
            )
        self.shards_dir = Path(shards_dir)
        self.shards_dir.mkdir(parents=True, exist_ok=True)
        self.max_concurrent = max_concurrent
        #: Local :class:`~repro.service.blobs.BlobStore` that
        #: manifest-bearing payloads materialize their image from;
        #: ``None`` restricts this host to path-based payloads.
        self.blob_store = blob_store
        self._slots = threading.Semaphore(max_concurrent)
        self._runs: dict[str, ShardRun] = {}
        self._lock = threading.Lock()

    # -- id allocation -----------------------------------------------------------

    def _next_shard_id(self) -> str:
        """One past the highest suffix in memory or on disk (old shard
        directories keep blocking their ids across worker restarts)."""
        highest = 0
        names = set(self._runs)
        try:
            names.update(path.name for path in self.shards_dir.iterdir()
                         if path.is_dir())
        except OSError:
            pass
        for name in names:
            match = _SHARD_ID_RE.fullmatch(name)
            if match:
                highest = max(highest, int(match.group(1)))
        return f"shard-{highest + 1:04d}"

    # -- lifecycle ---------------------------------------------------------------

    def submit(self, payload: dict) -> dict:
        """Accept one shard payload and start executing it.

        Raises ``ValueError`` for a structurally malformed payload (the
        API layer maps it to ``invalid_request``); deeper problems — a
        fault model that does not compile, an image path that does not
        exist on this host — surface as the shard's ``failed`` state.
        """
        if not isinstance(payload, dict):
            raise ValueError("shard payload must be a JSON object")
        missing = [key for key in REQUIRED_PAYLOAD_KEYS
                   if key not in payload]
        if missing:
            raise ValueError(
                f"shard payload missing keys: {', '.join(sorted(missing))}"
            )
        if not isinstance(payload["planned"], list):
            raise ValueError("shard payload 'planned' must be a list")
        manifest = payload.get("image_manifest")
        if manifest is None and "image" not in payload:
            raise ValueError(
                "shard payload needs 'image' (host-local staging paths) "
                "or 'image_manifest' (content-addressed)"
            )
        if manifest is not None:
            if self.blob_store is None:
                raise ValueError(
                    "this worker has no blob store; it cannot accept "
                    "manifest-bearing shard payloads"
                )
            from repro.service.blobs import ImageManifest

            # Parse eagerly: a malformed manifest is the dispatcher's
            # bug and must answer invalid_request, not a failed shard.
            ImageManifest.from_dict(manifest)
        with self._lock:
            shard_id = self._next_shard_id()
            directory = self.shards_dir / shard_id
            directory.mkdir(parents=True, exist_ok=True)
            run = ShardRun(
                shard_id=shard_id,
                shard=int(payload["shard"]),
                total=len(payload["planned"]),
                directory=directory,
            )
            self._runs[shard_id] = run
        # The executing engine is exactly the local process worker's;
        # only the local-only paths are rewritten into the shard's
        # private directory.  A manifest-bearing payload needs no
        # coordinator paths at all — the image is materialized from this
        # host's blob store in the worker thread below; a path-based
        # "image" still resolves on *this* host's filesystem (the
        # process backend's same-host form).
        body = dict(payload)
        body["stream_path"] = str(run.stream_path)
        body["cancel_flag"] = str(run.cancel_flag)
        body["base_dir"] = str(directory / "sandboxes")
        body.setdefault("artifacts_dir", None)
        thread = threading.Thread(target=self._run, args=(run, body),
                                  daemon=True)
        run.thread = thread
        thread.start()
        return self.status(shard_id)

    def _run(self, run: ShardRun, body: dict) -> None:
        from repro.orchestrator.backends import _run_shard_worker

        # The concurrency bound: a queued shard waits here for a slot.
        # Cancellation works while queued — the flag file is polled by
        # the engine, so a cancelled-while-queued shard starts, observes
        # the flag before its first experiment, and retires immediately.
        with self._slots:
            with self._lock:
                run.state = RUNNING
            try:
                manifest = body.pop("image_manifest", None)
                if manifest is not None:
                    # Materialize the content-addressed image into the
                    # shard's scratch corner (byte-identical to the
                    # coordinator's staging tree, permission bits
                    # included).  A blob the dispatcher never uploaded
                    # surfaces as this shard's failed state.
                    from repro.sandbox.image import SandboxImage
                    from repro.service.blobs import ImageManifest

                    image = SandboxImage.build_from_manifest(
                        ImageManifest.from_dict(manifest),
                        run.directory / "image",
                        self.blob_store,
                    )
                    body["image"] = {
                        "source_dir": str(image.source_dir),
                        "staging_dir": str(image.staging_dir),
                        "env": dict(image.env),
                    }
                report = _run_shard_worker(body)
            except Exception as error:  # noqa: BLE001 - via status
                with self._lock:
                    run.state = FAILED
                    run.error = f"{type(error).__name__}: {error}"
                return
            with self._lock:
                run.cancelled = bool(report.get("cancelled"))
                run.state = CANCELLED if run.cancelled else COMPLETED

    def _get(self, shard_id: str) -> ShardRun:
        try:
            return self._runs[shard_id]
        except KeyError:
            raise KeyError(f"unknown shard {shard_id!r}") from None

    def status(self, shard_id: str) -> dict:
        """The shard's state view (what ``GET /v1/shards/{id}`` serves)."""
        run = self._get(shard_id)
        with self._lock:
            state, cancelled, error = run.state, run.cancelled, run.error
        return {
            "shard_id": run.shard_id,
            "shard": run.shard,
            "state": state,
            "total": run.total,
            "recorded": _line_count(run.stream_path),
            "cancelled": cancelled,
            "error": error,
        }

    def load(self) -> dict:
        """This worker's live load — what its heartbeats carry so the
        dispatcher can place shards by least load instead of blindly."""
        with self._lock:
            running = sum(1 for run in self._runs.values()
                          if run.state == RUNNING)
            queued = sum(1 for run in self._runs.values()
                         if run.state == QUEUED)
        return {"running": running, "queued": queued,
                "max_concurrent": self.max_concurrent}

    def list(self) -> list[dict]:
        """Status views of every shard this worker accepted (newest id
        last), for operators inspecting a worker."""
        with self._lock:
            # Snapshot the ids under the lock: concurrent submits mutate
            # the registry while other server threads list it.
            shard_ids = sorted(self._runs)
        return [self.status(shard_id) for shard_id in shard_ids]

    def stream_path(self, shard_id: str) -> Path:
        """Where the shard's result stream lives (may not exist yet)."""
        return self._get(shard_id).stream_path

    def cancel(self, shard_id: str) -> dict:
        """Request cooperative cancellation (idempotent): the shard's
        engine polls the flag file between experiments."""
        run = self._get(shard_id)
        run.cancel_flag.parent.mkdir(parents=True, exist_ok=True)
        run.cancel_flag.touch()
        return self.status(shard_id)

    def join(self, timeout: float | None = None) -> None:
        """Wait for every accepted shard to finish (test/shutdown help)."""
        for run in list(self._runs.values()):
            if run.thread is not None:
                run.thread.join(timeout)


def _line_count(path: Path) -> int:
    """Newlines in ``path`` (0 when absent) — the cheap ``recorded``
    counter for status polls; shard streams carry no meta lines and one
    fsynced line per experiment."""
    try:
        with open(path, "rb") as handle:
            return sum(chunk.count(b"\n")
                       for chunk in iter(lambda: handle.read(65536), b""))
    except OSError:
        return 0


__all__ = [
    "CANCELLED",
    "COMPLETED",
    "DEFAULT_MAX_CONCURRENT",
    "FAILED",
    "QUEUED",
    "REQUIRED_PAYLOAD_KEYS",
    "RUNNING",
    "ShardHost",
    "ShardRun",
    "_line_count",
]
