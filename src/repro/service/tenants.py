"""Multi-tenant access control for the service layer.

The paper's §I pitch — ProFIPy "is provided as software-as-a-service" —
implies many users sharing one deployment.  This module supplies the
pieces the service stack needs for that:

* :class:`TenantSpec` — one tenant's identity (bearer token) and
  resource envelope (concurrent-job weight, queue depth, blob bytes,
  request rate);
* :class:`TenantDirectory` — the set of configured tenants, loaded from
  a ``tenants.json`` in the service workspace (``profipy serve
  --tenants FILE``), resolving bearer tokens to tenant names;
* :class:`TokenBucket` — the per-tenant request rate limiter the HTTP
  transport consults before dispatching a request;
* the tenancy exception types the API layer maps to wire codes:
  :class:`AuthenticationError` → ``unauthorized`` (401),
  :class:`TenantForbiddenError` → ``forbidden`` (403), and
  :class:`QuotaExceededError` → ``quota_exceeded`` (429).

With **no** tenants file configured the service runs exactly as before:
no authentication, every caller is the :data:`DEFAULT_TENANT`, whose
data keeps today's single-user workspace layout (``<workspace>/models``,
``<workspace>/jobs``, …).  Configured tenants are namespaced under
``<workspace>/tenants/<name>/…`` instead, and the scheduler drains their
queues fair-share (see :mod:`repro.service.jobs`).

Tenant names double as directory names, so they are validated against a
conservative slug pattern — a hostile name can never escape the
workspace.
"""

from __future__ import annotations

import json
import re
import threading
import time
from dataclasses import dataclass
from pathlib import Path

#: The implicit tenant of unauthenticated single-user deployments; its
#: data lives directly under the workspace (the pre-tenancy layout).
DEFAULT_TENANT = "default"

#: Tenant names become path components under ``<workspace>/tenants/``.
_TENANT_NAME_RE = re.compile(r"[A-Za-z0-9][A-Za-z0-9._-]{0,63}")


class AuthenticationError(PermissionError):
    """No credentials, or credentials that resolve to no tenant
    (wire code ``unauthorized``, HTTP 401)."""


class TenantForbiddenError(PermissionError):
    """Valid credentials, but the resource belongs to another tenant
    (wire code ``forbidden``, HTTP 403)."""


class QuotaExceededError(RuntimeError):
    """A tenant resource limit (queue depth, blob bytes, request rate)
    would be exceeded (wire code ``quota_exceeded``, HTTP 429)."""


def validate_tenant_name(name: str) -> str:
    """``name`` if it is a safe path-component slug, else ``ValueError``."""
    if not isinstance(name, str) or not _TENANT_NAME_RE.fullmatch(name):
        raise ValueError(
            f"invalid tenant name {name!r}: must match "
            f"{_TENANT_NAME_RE.pattern!r} (it becomes a directory name)"
        )
    if name in (".", ".."):
        raise ValueError(f"invalid tenant name {name!r}")
    return name


@dataclass(frozen=True)
class TenantSpec:
    """One tenant's identity and resource envelope.

    ``max_running`` is both a hard cap on the tenant's *concurrent* job
    bodies and its fair-share weight in the scheduler's round-robin
    drain; ``max_queued`` bounds the backlog a single tenant can park on
    the scheduler; ``max_blob_bytes`` bounds the content-addressed blob
    bytes the tenant may upload per service process; and
    ``requests_per_second``/``burst`` parameterize the HTTP token-bucket
    rate limiter.  ``None`` means unlimited for every bound.
    """

    name: str
    token: str | None = None
    max_running: int | None = 1
    max_queued: int | None = None
    max_blob_bytes: int | None = None
    requests_per_second: float | None = None
    burst: int | None = None

    def __post_init__(self) -> None:
        validate_tenant_name(self.name)
        if self.max_running is not None and self.max_running < 1:
            raise ValueError(
                f"tenant {self.name!r}: max_running must be >= 1 "
                f"(got {self.max_running})"
            )
        if self.max_queued is not None and self.max_queued < 0:
            raise ValueError(
                f"tenant {self.name!r}: max_queued must be >= 0 "
                f"(got {self.max_queued})"
            )
        if self.max_blob_bytes is not None and self.max_blob_bytes < 0:
            raise ValueError(
                f"tenant {self.name!r}: max_blob_bytes must be >= 0 "
                f"(got {self.max_blob_bytes})"
            )
        if (self.requests_per_second is not None
                and self.requests_per_second <= 0):
            raise ValueError(
                f"tenant {self.name!r}: requests_per_second must be > 0 "
                f"(got {self.requests_per_second})"
            )
        if self.burst is not None and self.burst < 1:
            raise ValueError(
                f"tenant {self.name!r}: burst must be >= 1 "
                f"(got {self.burst})"
            )

    def to_dict(self, redact_token: bool = False) -> dict:
        return {
            "name": self.name,
            "token": ("***" if redact_token and self.token else self.token),
            "max_running": self.max_running,
            "max_queued": self.max_queued,
            "max_blob_bytes": self.max_blob_bytes,
            "requests_per_second": self.requests_per_second,
            "burst": self.burst,
        }

    @classmethod
    def from_dict(cls, name: str, data: dict) -> "TenantSpec":
        if not isinstance(data, dict):
            raise ValueError(
                f"tenant {name!r}: entry must be a JSON object, "
                f"got {type(data).__name__}"
            )
        unknown = set(data) - {"token", "max_running", "max_queued",
                               "max_blob_bytes", "requests_per_second",
                               "burst"}
        if unknown:
            raise ValueError(
                f"tenant {name!r}: unknown keys {sorted(unknown)}"
            )
        return cls(
            name=name,
            token=data.get("token"),
            max_running=data.get("max_running", 1),
            max_queued=data.get("max_queued"),
            max_blob_bytes=data.get("max_blob_bytes"),
            requests_per_second=data.get("requests_per_second"),
            burst=data.get("burst"),
        )


#: The envelope of the implicit single-user tenant and of in-process
#: callers that never configured tenants: no caps at all.
UNLIMITED_SPEC = TenantSpec(name=DEFAULT_TENANT, max_running=None)


class TenantDirectory:
    """The configured tenants of one service deployment.

    Resolves bearer tokens to tenant names (:meth:`authenticate`) and
    answers each tenant's :class:`TenantSpec` (:meth:`spec`).  Loaded
    from a ``tenants.json`` of the form::

        {
          "tenants": {
            "alice": {"token": "s3cret", "max_running": 1,
                      "max_queued": 8, "max_blob_bytes": 67108864,
                      "requests_per_second": 50, "burst": 100},
            "bob":   {"token": "hunter2"}
          }
        }

    Every configured tenant needs a non-empty token (anonymous tenants
    would be indistinguishable on the wire); tokens must be unique.
    """

    def __init__(self, specs: list[TenantSpec]) -> None:
        self._specs: dict[str, TenantSpec] = {}
        self._by_token: dict[str, str] = {}
        for spec in specs:
            if spec.name == DEFAULT_TENANT:
                raise ValueError(
                    f"tenant name {DEFAULT_TENANT!r} is reserved for "
                    "unauthenticated single-user mode"
                )
            if spec.name in self._specs:
                raise ValueError(f"duplicate tenant {spec.name!r}")
            if not spec.token:
                raise ValueError(
                    f"tenant {spec.name!r} has no token; every configured "
                    "tenant authenticates with a bearer token"
                )
            if spec.token in self._by_token:
                raise ValueError(
                    f"tenant {spec.name!r} reuses the token of tenant "
                    f"{self._by_token[spec.token]!r}; tokens must be unique"
                )
            self._specs[spec.name] = spec
            self._by_token[spec.token] = spec.name

    @classmethod
    def from_dict(cls, data: dict) -> "TenantDirectory":
        if not isinstance(data, dict) or not isinstance(
                data.get("tenants"), dict):
            raise ValueError(
                'tenants config must be an object with a "tenants" object'
            )
        return cls([TenantSpec.from_dict(name, entry)
                    for name, entry in sorted(data["tenants"].items())])

    @classmethod
    def from_file(cls, path: str | Path) -> "TenantDirectory":
        path = Path(path)
        try:
            data = json.loads(path.read_text(encoding="utf-8"))
        except OSError as error:
            raise ValueError(
                f"cannot read tenants file {path}: {error}") from None
        except ValueError as error:
            raise ValueError(
                f"tenants file {path} is not valid JSON: {error}") from None
        return cls.from_dict(data)

    def authenticate(self, token: str | None) -> str:
        """The tenant a bearer token belongs to; raises
        :class:`AuthenticationError` for a missing or unknown token."""
        if not token:
            raise AuthenticationError(
                "authentication required: pass an Authorization: Bearer "
                "token for a configured tenant"
            )
        tenant = self._by_token.get(token)
        if tenant is None:
            raise AuthenticationError("unrecognized bearer token")
        return tenant

    def spec(self, tenant: str) -> TenantSpec:
        """The tenant's envelope (the unlimited default-tenant spec for
        the implicit single-user tenant)."""
        if tenant == DEFAULT_TENANT:
            return UNLIMITED_SPEC
        try:
            return self._specs[tenant]
        except KeyError:
            raise KeyError(f"unknown tenant {tenant!r}") from None

    def names(self) -> list[str]:
        return sorted(self._specs)

    def __contains__(self, tenant: str) -> bool:
        return tenant == DEFAULT_TENANT or tenant in self._specs

    def __len__(self) -> int:
        return len(self._specs)


class TokenBucket:
    """Classic token-bucket rate limiter (thread-safe).

    Starts full at ``burst`` tokens; each admitted request costs one
    token; tokens refill continuously at ``rate`` per second.  A request
    arriving to an empty bucket is rejected, never queued — the HTTP
    layer answers 429 and the client retries with backoff.
    """

    def __init__(self, rate: float, burst: int,
                 clock=time.monotonic) -> None:
        if rate <= 0:
            raise ValueError(f"rate must be > 0, got {rate}")
        if burst < 1:
            raise ValueError(f"burst must be >= 1, got {burst}")
        self.rate = float(rate)
        self.burst = float(burst)
        self._clock = clock
        self._tokens = self.burst
        self._stamp = clock()
        self._lock = threading.Lock()

    def try_acquire(self, tokens: float = 1.0) -> bool:
        """Take ``tokens`` if available right now; never blocks."""
        with self._lock:
            now = self._clock()
            self._tokens = min(
                self.burst, self._tokens + (now - self._stamp) * self.rate
            )
            self._stamp = now
            if self._tokens < tokens:
                return False
            self._tokens -= tokens
            return True
