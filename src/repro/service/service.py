"""The ProFIPy service core: fault models, campaigns, results (paper §I).

"ProFIPy is provided as software-as-a-service, and includes a workflow for
configuring the faultload and the workload" — this class is that workflow
as a programmatic API (the CLI sits on top; DESIGN.md documents the
substitution of the hosted UI):

* a persistent **fault-model registry** (save/import/list, plus the
  pre-defined models);
* **campaign submission** as asynchronous jobs scheduled on a bounded,
  tenant-fair worker pool (``queued`` → ``running`` →
  ``completed``/``failed``/``cancelled``), with persisted results and
  cooperative cancellation between experiments;
* **report retrieval** for finished jobs, streamed experiment results,
  and regression-test generation;
* **multi-tenancy**: every user-facing method takes an optional
  ``tenant``; a configured tenant's models, jobs, scan caches, and
  statistics live under ``<workspace>/tenants/<name>/…`` and are
  invisible to (and untouchable by — ``forbidden``) every other tenant.
  ``tenant=None`` is the trusted unscoped caller (the in-process facade
  and CLI on a single-user workspace); the HTTP transport always passes
  the tenant its bearer-token auth resolved.  With no tenants
  configured everything belongs to the default tenant and the workspace
  keeps its original single-user layout.

:class:`ProFIPyService` is the single behavioural core behind *both*
transports: the versioned ``/v1`` HTTP API
(:mod:`repro.service.http`, started via ``profipy serve``) projects
exactly these methods through the JSON schemas in
:mod:`repro.service.api`, and :class:`repro.service.client.ProFIPyClient`
mirrors this method surface 1:1 — swap ``ProFIPyService(workspace)`` for
``ProFIPyClient(url)`` and callers run unchanged, with identical job
lifecycles, summaries, experiment lists, and exception types
(``KeyError`` for unknown jobs/models, ``FileNotFoundError`` for missing
artifacts, ``TimeoutError`` from :meth:`wait`, ``PermissionError``
subclasses for auth failures).  :meth:`for_tenant` returns the same
surface with a tenant pre-bound, mirroring ``ProFIPyClient(token=...)``.
``docs/SERVICE_API.md`` documents the endpoint table and error codes.
"""

from __future__ import annotations

import dataclasses
import json
import shutil
import threading
from pathlib import Path

from repro.analysis.classify import ClassificationRule
from repro.analysis.metrics import ComponentSpec
from repro.analysis.report import CampaignReport
from repro.common.fsutil import read_json, write_json
from repro.faultmodel.library import predefined_models
from repro.faultmodel.model import FaultModel
from repro.orchestrator.campaign import (
    Campaign,
    CampaignCancelled,
    CampaignConfig,
    CampaignResult,
)
from repro.orchestrator.experiment import ExperimentResult
from repro.orchestrator.stream import ExperimentStream
from repro.stats.store import StatsStore
from repro.service.api import campaign_config_to_dict
from repro.service.jobs import (
    DEFAULT_MAX_WORKERS,
    Job,
    JobCancelled,
    JobRunner,
)
from repro.service.blobs import BlobStore
from repro.service.registry import DEFAULT_LEASE_SECONDS, WorkerRegistry
from repro.service.shards import ShardHost
from repro.service.tenants import (
    DEFAULT_TENANT,
    QuotaExceededError,
    TenantDirectory,
    TenantForbiddenError,
    TenantSpec,
    UNLIMITED_SPEC,
    validate_tenant_name,
)

#: Conventional tenants-file name auto-loaded from the workspace.
TENANTS_FILENAME = "tenants.json"


class ProFIPyService:
    """In-process fault-injection-as-a-service."""

    def __init__(self, workspace: str | Path,
                 max_workers: int = DEFAULT_MAX_WORKERS,
                 lease_seconds: float = DEFAULT_LEASE_SECONDS,
                 blob_cache_dir: str | Path | None = None,
                 blob_cache_bytes: int | None = None,
                 tenants: TenantDirectory | str | Path | None = None) -> None:
        self.workspace = Path(workspace)
        # Tenant directory: an explicit TenantDirectory or tenants.json
        # path wins; otherwise a <workspace>/tenants.json is picked up
        # automatically.  None leaves the service in unauthenticated
        # single-user mode (everything is the default tenant).
        if isinstance(tenants, (str, Path)):
            tenants = TenantDirectory.from_file(tenants)
        if tenants is None:
            conventional = self.workspace / TENANTS_FILENAME
            if conventional.is_file():
                tenants = TenantDirectory.from_file(conventional)
        self.tenants: TenantDirectory | None = tenants
        self.tenants_root = self.workspace / "tenants"
        self.models_dir = self.workspace / "models"
        self.models_dir.mkdir(parents=True, exist_ok=True)
        self.runner = JobRunner(self.workspace / "jobs",
                                max_workers=max_workers,
                                tenants_root=self.tenants_root,
                                limits=self._spec)
        # Content-addressed blob cache (/v1/blobs): target trees arrive
        # as sha256-keyed blobs, persist across shards and campaigns, so
        # a dispatcher re-shipping an unchanged tree uploads nothing.
        # ``blob_cache_bytes`` bounds the cache LRU-style (worker hosts
        # with small disks); unbounded by default.  The store is shared
        # across tenants (content addressing makes that safe — equal
        # bytes are equal blobs); per-tenant *upload* accounting
        # enforces each tenant's max_blob_bytes quota.
        self.blobs = BlobStore(blob_cache_dir or self.workspace / "blobs",
                               max_bytes=blob_cache_bytes)
        self._blob_usage: dict[str, int] = {}
        self._blob_lock = threading.Lock()
        # The worker role: shard payloads accepted over /v1/shards run
        # out of their own corner of the workspace, materializing their
        # image from the blob cache when the payload ships a manifest.
        # Constructed eagerly (it is one mkdir) so every service
        # instance can act as a remote-backend worker.
        self.shards = ShardHost(self.workspace / "shards",
                                blob_store=self.blobs)
        # The coordinator role: fleet membership for remote-backend
        # dispatchers (/v1/workers).  In-memory, like the shard host —
        # workers re-register after a coordinator restart.
        self.registry = WorkerRegistry(lease_seconds=lease_seconds)
        # Cross-campaign statistical result store (/v1/stats): completed
        # job streams are indexed here by campaign meta, queryable for
        # per-mode estimates across campaigns.  One store per tenant;
        # the default tenant keeps the original <workspace>/stats.
        self.stats = StatsStore(self.workspace / "stats")
        self._stats_stores: dict[str, StatsStore] = {DEFAULT_TENANT:
                                                     self.stats}

    # -- tenancy -----------------------------------------------------------------

    def _spec(self, tenant: str) -> TenantSpec:
        """The tenant's resource envelope (unlimited when no directory
        is configured or for the default tenant)."""
        if self.tenants is not None and tenant in self.tenants:
            return self.tenants.spec(tenant)
        return UNLIMITED_SPEC

    def _resolve(self, tenant: str | None) -> str:
        """Normalize a caller-supplied tenant (``None`` → default)."""
        if tenant is None:
            return DEFAULT_TENANT
        return validate_tenant_name(tenant)

    def _tenant_root(self, tenant: str) -> Path:
        """Where the tenant's namespaced data lives; the default tenant
        keeps the original single-user workspace layout."""
        if tenant == DEFAULT_TENANT:
            return self.workspace
        validate_tenant_name(tenant)
        return self.tenants_root / tenant

    def _models_dir(self, tenant: str) -> Path:
        directory = self._tenant_root(tenant) / "models"
        directory.mkdir(parents=True, exist_ok=True)
        return directory

    def _stats_store(self, tenant: str) -> StatsStore:
        store = self._stats_stores.get(tenant)
        if store is None:
            store = StatsStore(self._tenant_root(tenant) / "stats")
            self._stats_stores[tenant] = store
        return store

    def _check_owner(self, job: Job, tenant: str | None) -> Job:
        """The job, if the caller may see it.

        ``tenant=None`` is the trusted unscoped caller (in-process
        facade, CLI on the workspace); an explicit tenant may only
        touch its own jobs — anything else answers ``forbidden``,
        deliberately distinct from ``unknown_job`` so a tenant probing
        ids learns nothing it could not learn from 403s alone.
        """
        if tenant is not None and job.tenant != tenant:
            raise TenantForbiddenError(
                f"job {job.job_id} belongs to another tenant"
            )
        return job

    def for_tenant(self, tenant: str) -> "TenantScopedService":
        """This service's surface with ``tenant`` pre-bound — the
        in-process mirror of ``ProFIPyClient(url, token=...)``."""
        return TenantScopedService(self, self._resolve(tenant))

    def tenant_views(self) -> list[dict]:
        """Operator view of every configured tenant: quotas plus live
        queue/running counts (``profipy tenants list``)."""
        views = []
        names = self.tenants.names() if self.tenants is not None else []
        for name in names:
            spec = self.tenants.spec(name)
            views.append({
                **spec.to_dict(redact_token=True),
                "queued": self.runner.queued_count(name),
                "running": self.runner.running_count(name),
                "blob_bytes_used": self._blob_usage.get(name, 0),
            })
        return views

    # -- fault model registry ------------------------------------------------

    def save_model(self, model: FaultModel,
                   tenant: str | None = None) -> Path:
        """Store a fault model in the registry (overwrites same name)."""
        path = self._models_dir(self._resolve(tenant)) / f"{model.name}.json"
        model.save(path)
        return path

    def import_model(self, path: str | Path,
                     tenant: str | None = None) -> FaultModel:
        """Import a fault model JSON produced by a previous campaign."""
        model = FaultModel.load(path)
        self.save_model(model, tenant=tenant)
        return model

    def load_model(self, name: str, tenant: str | None = None) -> FaultModel:
        """A stored model by name, falling back to the pre-defined ones."""
        path = self._models_dir(self._resolve(tenant)) / f"{name}.json"
        if path.exists():
            return FaultModel.load(path)
        predefined = predefined_models()
        if name in predefined:
            return predefined[name]
        raise KeyError(
            f"unknown fault model {name!r}; "
            f"stored: {self.stored_models(tenant=tenant)}, "
            f"predefined: {sorted(predefined)}"
        )

    def stored_models(self, tenant: str | None = None) -> list[str]:
        """Names of models stored in the (tenant's) registry."""
        directory = self._models_dir(self._resolve(tenant))
        return sorted(path.stem for path in directory.glob("*.json"))

    def list_models(self, tenant: str | None = None) -> list[str]:
        """Every loadable model name: stored **and** pre-defined.

        The pre-defined models are always available to :meth:`load_model`
        — hiding them here made ``GET /v1/models`` lie about what a
        campaign could reference.  A stored model shadows a pre-defined
        one of the same name (one name, one model, the stored one wins
        at load time).
        """
        stored = self.stored_models(tenant=tenant)
        return sorted(set(stored) | set(predefined_models()))

    # -- campaign submission -----------------------------------------------------

    def submit_campaign(
        self,
        config: CampaignConfig,
        rules: list[ClassificationRule] | None = None,
        components: list[ComponentSpec] | None = None,
        block: bool = True,
        resume_from: str | None = None,
        tenant: str | None = None,
    ) -> Job:
        """Run a campaign as a job; results and report persist on disk.

        Experiments stream to ``<job_dir>/experiments.jsonl`` as they
        complete.  ``resume_from`` names a previous job (e.g. one killed
        mid-campaign or cancelled) **of the same tenant**; its stream is
        carried over, so already-recorded experiments are not re-run —
        only the remainder executes.  With ``block=False`` the job is
        queued on the tenant-fair scheduler (a backlog past the tenant's
        ``max_queued`` quota raises
        :class:`~repro.service.tenants.QuotaExceededError`) and can be
        cancelled via :meth:`cancel`; cancellation is observed between
        experiments, leaving a partial stream that a follow-up
        ``resume_from`` completes.
        """
        rules = rules or []
        components = components or []
        owner = self._resolve(tenant)
        # Service campaigns share a persistent per-tenant scan cache:
        # repeated campaigns over unchanged target trees skip
        # re-matching entirely, and no tenant reads cache entries
        # derived from another tenant's tree.  The caller's config
        # object is left untouched.
        if config.scan_cache_dir is None:
            config = dataclasses.replace(
                config, scan_cache_dir=self._tenant_root(owner) / "scan_cache"
            )
        # Likewise the blob store: remote-backend campaigns ingest their
        # staged image into the service's persistent content-addressed
        # store, so repeat campaigns re-upload nothing.
        if config.blob_cache_dir is None:
            config = dataclasses.replace(
                config, blob_cache_dir=self.blobs.root
            )
        previous_stream = None
        if resume_from is not None:
            previous = self._check_owner(self.runner.get(resume_from),
                                         tenant)
            previous_stream = self._job_dir(previous) / "experiments.jsonl"
        stats_store = self._stats_store(owner)

        def body(job_dir: Path) -> None:
            # Persist the *complete* wire form of the config that runs
            # (plus resume provenance): the hand-rolled subset written
            # here before silently dropped sampling, image_manifest,
            # scan_incremental, registry_url, and the scan-cache knobs,
            # so audits and regression-test generation saw a config
            # that never existed.  target_dir is resolved for replay
            # tools that run from a different working directory.
            write_json(job_dir / "config.json", {
                **campaign_config_to_dict(config),
                "target_dir": str(Path(config.target_dir).resolve()),
                "resumed_from": resume_from,
                "tenant": owner,
            })
            stream_path = job_dir / "experiments.jsonl"
            if (previous_stream is not None and previous_stream.exists()
                    and previous_stream != stream_path):
                shutil.copyfile(previous_stream, stream_path)
                # Carry over partial *shard* streams too: a job killed
                # mid-campaign under the process backend recorded some
                # experiments only there; the campaign's recovery merges
                # them before computing the resume set.
                from repro.orchestrator.backends import leftover_shard_streams

                for shard_path in leftover_shard_streams(previous_stream):
                    shutil.copyfile(shard_path, job_dir / shard_path.name)
            run_config = config
            if run_config.results_path is None:
                run_config = dataclasses.replace(
                    run_config, results_path=stream_path
                )
            campaign = Campaign(run_config)
            # The job directory is named after the job id, so the body
            # can poll its own scheduler cancel flag without the id
            # existing before submit() assigns it.
            cancel = lambda: self.runner.cancel_requested(job_dir.name)  # noqa: E731

            def on_progress(snapshot: dict) -> None:
                # Atomic write (unique temp + os.replace) so readers
                # never see a torn snapshot; best-effort — progress must
                # never sink a campaign.
                try:
                    write_json(job_dir / "progress.json", snapshot)
                except OSError:
                    pass

            try:
                result = campaign.run(cancel=cancel,
                                      on_progress=on_progress)
            except CampaignCancelled as stopped:
                # Persist what the partial run produced — the stream is
                # a valid resume_from point and the report summarizes
                # the experiments that did record.
                report = CampaignReport(stopped.result, rules=rules,
                                        components=components)
                self._persist_result(job_dir, stopped.result, report,
                                     stats_store)
                raise JobCancelled(
                    f"cancelled after {stopped.result.executed} experiments"
                ) from None
            report = CampaignReport(result, rules=rules,
                                    components=components)
            self._persist_result(job_dir, result, report, stats_store)

        return self.runner.submit(config.name, body, block=block,
                                  tenant=owner)

    def job(self, job_id: str, tenant: str | None = None) -> Job:
        job = self._check_owner(self.runner.get(job_id), tenant)
        job.progress = self._progress_for(job)
        return job

    def list_jobs(self, tenant: str | None = None) -> list[Job]:
        jobs = self.runner.list(tenant)
        for job in jobs:
            job.progress = self._progress_for(job)
        return jobs

    def job_progress(self, job_id: str,
                     tenant: str | None = None) -> dict | None:
        """The job's latest shard-aware progress snapshot, or ``None``.

        Read from ``<job_dir>/progress.json`` (written atomically by the
        running campaign), so it works across processes: a CLI pointed
        at the workspace sees the same live numbers as the HTTP API.
        """
        return self._progress_for(
            self._check_owner(self.runner.get(job_id), tenant)
        )

    @staticmethod
    def _progress_for(job: Job) -> dict | None:
        # ``progress.json`` is advisory: a corrupt, truncated, or
        # otherwise unreadable snapshot (a crash mid-write, a stray
        # directory, bad encoding) must degrade to "no progress", never
        # crash a job view.  Anything the read raises lands here —
        # decode errors (``json.JSONDecodeError``/``UnicodeDecodeError``
        # are ``ValueError``\ s), filesystem errors, and pathological
        # payloads (e.g. nesting deep enough to exhaust the recursion
        # limit raises ``RecursionError``).
        if job.directory is None:
            return None
        try:
            data = read_json(job.directory / "progress.json")
        except (OSError, ValueError, RecursionError):
            return None
        return data if isinstance(data, dict) else None

    def wait(self, job_id: str, timeout: float | None = None,
             tenant: str | None = None) -> Job:
        self._check_owner(self.runner.get(job_id), tenant)
        job = self.runner.wait(job_id, timeout)
        job.progress = self._progress_for(job)
        return job

    def cancel(self, job_id: str, tenant: str | None = None) -> Job:
        """Request cancellation of a queued or running job (idempotent).

        A queued job retires immediately; a running campaign stops at
        the next between-experiments checkpoint and lands in the
        ``cancelled`` state with its partial result stream persisted.
        """
        self._check_owner(self.runner.get(job_id), tenant)
        job = self.runner.cancel(job_id)
        job.progress = self._progress_for(job)
        return job

    # -- results ---------------------------------------------------------------------

    def _job_dir(self, job: Job) -> Path:
        """The job's directory, or a clear error when it has none.

        A job without a directory used to resolve artifact paths against
        the *current working directory* (``Path() / "report.txt"``),
        silently reading whatever happened to be there.
        """
        if job.directory is None:
            raise FileNotFoundError(
                f"job {job.job_id} has no directory on disk; its artifacts "
                "(report, summary, experiments) are unavailable"
            )
        return job.directory

    def report_text(self, job_id: str, tenant: str | None = None) -> str:
        job = self._check_owner(self.runner.get(job_id), tenant)
        path = self._job_dir(job) / "report.txt"
        if not path.exists():
            raise FileNotFoundError(
                f"job {job_id} has no report (status: {job.status})"
            )
        return path.read_text(encoding="utf-8")

    def result_summary(self, job_id: str, tenant: str | None = None) -> dict:
        job = self._check_owner(self.runner.get(job_id), tenant)
        path = self._job_dir(job) / "summary.json"
        if not path.exists():
            raise FileNotFoundError(
                f"job {job_id} has no summary (status: {job.status})"
            )
        return read_json(path)

    def experiments(self, job_id: str,
                    tenant: str | None = None) -> list[ExperimentResult]:
        """Recorded experiments of a job, sorted by experiment id.

        Reads the job's result stream; safe to call on a job that was
        killed mid-campaign (a truncated trailing line is skipped) or on
        a cancelled job (the partial stream is returned).
        """
        from repro.orchestrator.stream import ExperimentStream

        job = self._check_owner(self.runner.get(job_id), tenant)
        path = self._job_dir(job) / "experiments.jsonl"
        return sorted(ExperimentStream(path).load(),
                      key=lambda experiment: experiment.experiment_id)

    def experiments_path(self, job_id: str,
                         tenant: str | None = None) -> Path:
        """Where the job's raw ``experiments.jsonl`` stream lives (the
        HTTP layer serves it verbatim as NDJSON)."""
        job = self._check_owner(self.runner.get(job_id), tenant)
        return self._job_dir(job) / "experiments.jsonl"

    def generate_regression_tests(self, job_id: str,
                                  dest_dir: str | Path,
                                  tenant: str | None = None) -> list[Path]:
        """Write one regression test per failed experiment of a job
        (the paper's §I regression-testing use case)."""
        from repro.regression import write_regression_test
        from repro.workload.spec import WorkloadSpec

        job = self._check_owner(self.runner.get(job_id), tenant)
        config_path = self._job_dir(job) / "config.json"
        if not config_path.exists():
            raise FileNotFoundError(
                f"job {job_id} has no persisted campaign config"
            )
        config = read_json(config_path)
        fault_model = FaultModel.from_dict(config["fault_model"])
        workload = WorkloadSpec.from_dict(config["workload"])
        target_dir = Path(config["target_dir"])
        # Replaying the recorded mutant requires the campaign seed: the
        # per-experiment RNG is keyed on (seed, experiment_id).
        campaign_seed = config.get("seed", 0)
        written = []
        for experiment in self.experiments(job_id, tenant=tenant):
            if experiment.completed and experiment.failed_round1:
                written.append(write_regression_test(
                    experiment, fault_model, target_dir, workload, dest_dir,
                    campaign_seed=campaign_seed,
                ))
        return written

    # -- remote-backend worker role ---------------------------------------------

    def submit_shard(self, payload: dict) -> dict:
        """Accept one remote-backend shard payload and start executing
        it (the worker side of ``POST /v1/shards``); returns the
        shard's status view.  Raises ``ValueError`` for a malformed
        payload."""
        return self.shards.submit(payload)

    def shard_status(self, shard_id: str) -> dict:
        """One shard's ``{state, total, recorded, cancelled, error}``
        view; raises ``KeyError`` for an unknown shard."""
        return self.shards.status(shard_id)

    def list_shards(self) -> list[dict]:
        """Status views of every shard this worker accepted (operator
        introspection of a worker host)."""
        return self.shards.list()

    def cancel_shard(self, shard_id: str) -> dict:
        """Request cooperative cancellation of a running shard
        (idempotent); the engine observes it between experiments."""
        return self.shards.cancel(shard_id)

    def shard_stream_path(self, shard_id: str) -> Path:
        """Where the shard's raw result stream lives (served as a
        newline-aligned NDJSON tail by the HTTP layer)."""
        return self.shards.stream_path(shard_id)

    # -- content-addressed blobs --------------------------------------------------

    def blob_path(self, digest: str) -> Path:
        """Where a stored blob lives (the HTTP layer serves the file
        verbatim); raises ``KeyError`` for a blob this host lacks and
        ``ValueError`` for a malformed digest."""
        path = self.blobs.path(digest)
        if not path.is_file():
            raise KeyError(f"unknown blob {digest}")
        return path

    def put_blob(self, digest: str, data: bytes,
                 tenant: str | None = None) -> str:
        """Store one content-addressed blob (idempotent); the content
        is verified against ``digest`` — raises ``ValueError`` on
        mismatch.  An explicit tenant's uploads are accounted against
        its ``max_blob_bytes`` quota (re-putting an already-stored blob
        costs nothing — content addressing makes dedup free)."""
        spec = self._spec(tenant) if tenant is not None else UNLIMITED_SPEC
        if spec.max_blob_bytes is None:
            return self.blobs.put_bytes(data, digest=digest)
        with self._blob_lock:
            new_bytes = len(data) if self.blobs.missing([digest]) else 0
            used = self._blob_usage.get(tenant, 0)
            if used + new_bytes > spec.max_blob_bytes:
                raise QuotaExceededError(
                    f"tenant {tenant!r} blob quota exhausted: "
                    f"{used} + {new_bytes} bytes exceeds "
                    f"max_blob_bytes={spec.max_blob_bytes}"
                )
            stored = self.blobs.put_bytes(data, digest=digest)
            self._blob_usage[tenant] = used + new_bytes
        return stored

    def missing_blobs(self, digests: list[str]) -> list[str]:
        """Which of ``digests`` this host's blob store lacks — the
        dispatcher uploads only those before submitting a shard."""
        return self.blobs.missing(digests)

    # -- worker fleet registry ---------------------------------------------------

    def register_worker(self, payload: dict) -> dict:
        """Grant a lease to the worker described by ``payload``
        (``{"url": ..., "max_concurrent": ..., "managed": ...}``);
        raises ``ValueError`` for a malformed payload."""
        return self.registry.register_worker(payload)

    def worker_heartbeat(self, worker_id: str,
                         load: dict | None = None) -> dict:
        """Refresh a worker's lease with its live load; raises
        ``KeyError`` for an unknown id and
        :class:`~repro.service.registry.LeaseExpiredError` for a dead
        or replaced lease (the worker must re-register)."""
        return self.registry.heartbeat(worker_id, load)

    def list_workers(self) -> list[dict]:
        """Every registered worker's view, lease states swept."""
        return self.registry.list_workers()

    # -- cross-campaign statistics -------------------------------------------

    def stats_add(self, stream_path: str | Path,
                  tenant: str | None = None) -> dict:
        """Register an experiment stream with the (tenant's) statistical
        store (completed job streams register automatically)."""
        return self._stats_store(self._resolve(tenant)).add(stream_path)

    def stats_campaigns(self, campaign: str | None = None,
                        tenant: str | None = None) -> list[dict]:
        """Campaigns indexed in the (tenant's) statistical result store."""
        return self._stats_store(self._resolve(tenant)).campaigns(campaign)

    def stats_aggregate(self, campaign: str | None = None,
                        spec: str | None = None,
                        file: str | None = None,
                        component: str | None = None,
                        confidence: float = 0.95,
                        rules: list[ClassificationRule] | None = None,
                        tenant: str | None = None,
                        ) -> dict:
        """Per-failure-mode Wilson estimates across stored campaigns."""
        return self._stats_store(self._resolve(tenant)).aggregate(
            campaign=campaign, spec=spec, file=file, component=component,
            confidence=confidence, rules=rules,
        )

    def close(self) -> None:
        """Stop the job scheduler (used by the HTTP server on shutdown)."""
        self.runner.close()

    def _persist_result(self, job_dir: Path, result: CampaignResult,
                        report: CampaignReport,
                        stats_store: StatsStore | None = None) -> None:
        write_json(job_dir / "summary.json", result.summary())
        (job_dir / "report.txt").write_text(report.render() + "\n",
                                            encoding="utf-8")
        # The campaign normally streamed straight into the job directory;
        # only materialize a copy when the results live elsewhere (e.g. a
        # caller-pinned results_path).  Compare resolved paths: job_dir
        # may be relative (the CLI's default workspace) while the
        # campaign resolved its results_path.
        stream_path = job_dir / "experiments.jsonl"
        if (result.experiments_path is None
                or Path(result.experiments_path).resolve()
                != stream_path.resolve()):
            # Carry the campaign meta line over so the copy keeps its
            # store-index fingerprint (name/seed/faultload/target).
            meta = None
            if (result.experiments_path is not None
                    and Path(result.experiments_path).is_file()):
                meta = ExperimentStream(result.experiments_path).read_meta()
            with open(stream_path, "w", encoding="utf-8") as handle:
                handle.write(json.dumps(
                    {"meta": meta or {"campaign": result.name}},
                    sort_keys=True) + "\n")
                for experiment in result.experiments:
                    handle.write(json.dumps(experiment.to_dict()) + "\n")
        # Index the finished stream for cross-campaign /v1/stats queries
        # (best-effort: a failed registration never fails the job).
        try:
            (stats_store or self.stats).add(stream_path,
                                            summary=result.summary())
        except (OSError, ValueError):
            pass


class TenantScopedService:
    """The :class:`ProFIPyService` surface with one tenant pre-bound.

    The in-process twin of ``ProFIPyClient(url, token=...)`` — the
    contract tests run the same calls through both.  Every method
    forwards to the underlying service with ``tenant=`` fixed, so the
    scoped view can never reach another tenant's data.
    """

    def __init__(self, service: ProFIPyService, tenant: str) -> None:
        self.service = service
        self.tenant = tenant

    # -- fault model registry ------------------------------------------------

    def save_model(self, model: FaultModel) -> Path:
        return self.service.save_model(model, tenant=self.tenant)

    def import_model(self, path: str | Path) -> FaultModel:
        return self.service.import_model(path, tenant=self.tenant)

    def load_model(self, name: str) -> FaultModel:
        return self.service.load_model(name, tenant=self.tenant)

    def stored_models(self) -> list[str]:
        return self.service.stored_models(tenant=self.tenant)

    def list_models(self) -> list[str]:
        return self.service.list_models(tenant=self.tenant)

    # -- campaigns and jobs --------------------------------------------------

    def submit_campaign(self, config: CampaignConfig,
                        rules: list[ClassificationRule] | None = None,
                        components: list[ComponentSpec] | None = None,
                        block: bool = True,
                        resume_from: str | None = None) -> Job:
        return self.service.submit_campaign(
            config, rules=rules, components=components, block=block,
            resume_from=resume_from, tenant=self.tenant,
        )

    def job(self, job_id: str) -> Job:
        return self.service.job(job_id, tenant=self.tenant)

    def job_progress(self, job_id: str) -> dict | None:
        return self.service.job_progress(job_id, tenant=self.tenant)

    def list_jobs(self) -> list[Job]:
        return self.service.list_jobs(tenant=self.tenant)

    def wait(self, job_id: str, timeout: float | None = None) -> Job:
        return self.service.wait(job_id, timeout, tenant=self.tenant)

    def cancel(self, job_id: str) -> Job:
        return self.service.cancel(job_id, tenant=self.tenant)

    # -- results -------------------------------------------------------------

    def report_text(self, job_id: str) -> str:
        return self.service.report_text(job_id, tenant=self.tenant)

    def result_summary(self, job_id: str) -> dict:
        return self.service.result_summary(job_id, tenant=self.tenant)

    def experiments(self, job_id: str) -> list[ExperimentResult]:
        return self.service.experiments(job_id, tenant=self.tenant)

    def experiments_path(self, job_id: str) -> Path:
        return self.service.experiments_path(job_id, tenant=self.tenant)

    def generate_regression_tests(self, job_id: str,
                                  dest_dir: str | Path) -> list[Path]:
        return self.service.generate_regression_tests(
            job_id, dest_dir, tenant=self.tenant
        )

    # -- statistics ----------------------------------------------------------

    def stats_add(self, stream_path: str | Path) -> dict:
        return self.service.stats_add(stream_path, tenant=self.tenant)

    def stats_campaigns(self, campaign: str | None = None) -> list[dict]:
        return self.service.stats_campaigns(campaign, tenant=self.tenant)

    def stats_aggregate(self, campaign: str | None = None,
                        spec: str | None = None,
                        file: str | None = None,
                        component: str | None = None,
                        confidence: float = 0.95,
                        rules: list[ClassificationRule] | None = None,
                        ) -> dict:
        return self.service.stats_aggregate(
            campaign=campaign, spec=spec, file=file, component=component,
            confidence=confidence, rules=rules, tenant=self.tenant,
        )
