"""The ProFIPy service core: fault models, campaigns, results (paper §I).

"ProFIPy is provided as software-as-a-service, and includes a workflow for
configuring the faultload and the workload" — this class is that workflow
as a programmatic API (the CLI sits on top; DESIGN.md documents the
substitution of the hosted UI):

* a persistent **fault-model registry** (save/import/list, plus the
  pre-defined models);
* **campaign submission** as asynchronous jobs scheduled on a bounded
  worker pool (``queued`` → ``running`` →
  ``completed``/``failed``/``cancelled``), with persisted results and
  cooperative cancellation between experiments;
* **report retrieval** for finished jobs, streamed experiment results,
  and regression-test generation.

:class:`ProFIPyService` is the single behavioural core behind *both*
transports: the versioned ``/v1`` HTTP API
(:mod:`repro.service.http`, started via ``profipy serve``) projects
exactly these methods through the JSON schemas in
:mod:`repro.service.api`, and :class:`repro.service.client.ProFIPyClient`
mirrors this method surface 1:1 — swap ``ProFIPyService(workspace)`` for
``ProFIPyClient(url)`` and callers run unchanged, with identical job
lifecycles, summaries, experiment lists, and exception types
(``KeyError`` for unknown jobs/models, ``FileNotFoundError`` for missing
artifacts, ``TimeoutError`` from :meth:`wait`).  ``docs/SERVICE_API.md``
documents the endpoint table and error codes.
"""

from __future__ import annotations

import dataclasses
import json
import shutil
from pathlib import Path

from repro.analysis.classify import ClassificationRule
from repro.analysis.metrics import ComponentSpec
from repro.analysis.report import CampaignReport
from repro.common.fsutil import read_json, write_json
from repro.faultmodel.library import predefined_models
from repro.faultmodel.model import FaultModel
from repro.orchestrator.campaign import (
    Campaign,
    CampaignCancelled,
    CampaignConfig,
    CampaignResult,
)
from repro.orchestrator.experiment import ExperimentResult
from repro.orchestrator.stream import ExperimentStream
from repro.stats.store import StatsStore
from repro.service.jobs import (
    DEFAULT_MAX_WORKERS,
    Job,
    JobCancelled,
    JobRunner,
)
from repro.service.blobs import BlobStore
from repro.service.registry import DEFAULT_LEASE_SECONDS, WorkerRegistry
from repro.service.shards import ShardHost


class ProFIPyService:
    """In-process fault-injection-as-a-service."""

    def __init__(self, workspace: str | Path,
                 max_workers: int = DEFAULT_MAX_WORKERS,
                 lease_seconds: float = DEFAULT_LEASE_SECONDS,
                 blob_cache_dir: str | Path | None = None,
                 blob_cache_bytes: int | None = None) -> None:
        self.workspace = Path(workspace)
        self.models_dir = self.workspace / "models"
        self.models_dir.mkdir(parents=True, exist_ok=True)
        self.runner = JobRunner(self.workspace / "jobs",
                                max_workers=max_workers)
        # Content-addressed blob cache (/v1/blobs): target trees arrive
        # as sha256-keyed blobs, persist across shards and campaigns, so
        # a dispatcher re-shipping an unchanged tree uploads nothing.
        # ``blob_cache_bytes`` bounds the cache LRU-style (worker hosts
        # with small disks); unbounded by default.
        self.blobs = BlobStore(blob_cache_dir or self.workspace / "blobs",
                               max_bytes=blob_cache_bytes)
        # The worker role: shard payloads accepted over /v1/shards run
        # out of their own corner of the workspace, materializing their
        # image from the blob cache when the payload ships a manifest.
        # Constructed eagerly (it is one mkdir) so every service
        # instance can act as a remote-backend worker.
        self.shards = ShardHost(self.workspace / "shards",
                                blob_store=self.blobs)
        # The coordinator role: fleet membership for remote-backend
        # dispatchers (/v1/workers).  In-memory, like the shard host —
        # workers re-register after a coordinator restart.
        self.registry = WorkerRegistry(lease_seconds=lease_seconds)
        # Cross-campaign statistical result store (/v1/stats): completed
        # job streams are indexed here by campaign meta, queryable for
        # per-mode estimates across campaigns.
        self.stats = StatsStore(self.workspace / "stats")

    # -- fault model registry ------------------------------------------------

    def save_model(self, model: FaultModel) -> Path:
        """Store a fault model in the registry (overwrites same name)."""
        path = self.models_dir / f"{model.name}.json"
        model.save(path)
        return path

    def import_model(self, path: str | Path) -> FaultModel:
        """Import a fault model JSON produced by a previous campaign."""
        model = FaultModel.load(path)
        self.save_model(model)
        return model

    def load_model(self, name: str) -> FaultModel:
        """A stored model by name, falling back to the pre-defined ones."""
        path = self.models_dir / f"{name}.json"
        if path.exists():
            return FaultModel.load(path)
        predefined = predefined_models()
        if name in predefined:
            return predefined[name]
        raise KeyError(
            f"unknown fault model {name!r}; stored: {self.list_models()}, "
            f"predefined: {sorted(predefined)}"
        )

    def list_models(self) -> list[str]:
        """Names of stored models (pre-defined ones are always available)."""
        return sorted(path.stem for path in self.models_dir.glob("*.json"))

    # -- campaign submission -----------------------------------------------------

    def submit_campaign(
        self,
        config: CampaignConfig,
        rules: list[ClassificationRule] | None = None,
        components: list[ComponentSpec] | None = None,
        block: bool = True,
        resume_from: str | None = None,
    ) -> Job:
        """Run a campaign as a job; results and report persist on disk.

        Experiments stream to ``<job_dir>/experiments.jsonl`` as they
        complete.  ``resume_from`` names a previous job (e.g. one killed
        mid-campaign or cancelled); its stream is carried over, so
        already-recorded experiments are not re-run — only the remainder
        executes.  With ``block=False`` the job is queued on the bounded
        scheduler and can be cancelled via :meth:`cancel`; cancellation
        is observed between experiments, leaving a partial stream that a
        follow-up ``resume_from`` completes.
        """
        rules = rules or []
        components = components or []
        # Service campaigns share a persistent scan cache: repeated
        # campaigns over unchanged target trees skip re-matching entirely.
        # The caller's config object is left untouched.
        if config.scan_cache_dir is None:
            config = dataclasses.replace(
                config, scan_cache_dir=self.workspace / "scan_cache"
            )
        # Likewise the blob store: remote-backend campaigns ingest their
        # staged image into the service's persistent content-addressed
        # store, so repeat campaigns re-upload nothing.
        if config.blob_cache_dir is None:
            config = dataclasses.replace(
                config, blob_cache_dir=self.blobs.root
            )
        previous_stream = None
        if resume_from is not None:
            previous = self.runner.get(resume_from)
            previous_stream = self._job_dir(previous) / "experiments.jsonl"

        def body(job_dir: Path) -> None:
            write_json(job_dir / "config.json", {
                "name": config.name,
                "target_dir": str(Path(config.target_dir).resolve()),
                "fault_model": config.fault_model.to_dict(),
                "workload": config.workload.to_dict(),
                "injectable_files": config.injectable_files,
                "scan_jobs": config.scan_jobs,
                "backend": config.backend,
                "shards": config.shards,
                "workers": config.workers,
                "seed": config.seed,
                "resumed_from": resume_from,
            })
            stream_path = job_dir / "experiments.jsonl"
            if (previous_stream is not None and previous_stream.exists()
                    and previous_stream != stream_path):
                shutil.copyfile(previous_stream, stream_path)
                # Carry over partial *shard* streams too: a job killed
                # mid-campaign under the process backend recorded some
                # experiments only there; the campaign's recovery merges
                # them before computing the resume set.
                from repro.orchestrator.backends import leftover_shard_streams

                for shard_path in leftover_shard_streams(previous_stream):
                    shutil.copyfile(shard_path, job_dir / shard_path.name)
            run_config = config
            if run_config.results_path is None:
                run_config = dataclasses.replace(
                    run_config, results_path=stream_path
                )
            campaign = Campaign(run_config)
            # The job directory is named after the job id, so the body
            # can poll its own scheduler cancel flag without the id
            # existing before submit() assigns it.
            cancel = lambda: self.runner.cancel_requested(job_dir.name)  # noqa: E731

            def on_progress(snapshot: dict) -> None:
                # Atomic write (unique temp + os.replace) so readers
                # never see a torn snapshot; best-effort — progress must
                # never sink a campaign.
                try:
                    write_json(job_dir / "progress.json", snapshot)
                except OSError:
                    pass

            try:
                result = campaign.run(cancel=cancel,
                                      on_progress=on_progress)
            except CampaignCancelled as stopped:
                # Persist what the partial run produced — the stream is
                # a valid resume_from point and the report summarizes
                # the experiments that did record.
                report = CampaignReport(stopped.result, rules=rules,
                                        components=components)
                self._persist_result(job_dir, stopped.result, report)
                raise JobCancelled(
                    f"cancelled after {stopped.result.executed} experiments"
                ) from None
            report = CampaignReport(result, rules=rules,
                                    components=components)
            self._persist_result(job_dir, result, report)

        return self.runner.submit(config.name, body, block=block)

    def job(self, job_id: str) -> Job:
        job = self.runner.get(job_id)
        job.progress = self._progress_for(job)
        return job

    def list_jobs(self) -> list[Job]:
        jobs = self.runner.list()
        for job in jobs:
            job.progress = self._progress_for(job)
        return jobs

    def job_progress(self, job_id: str) -> dict | None:
        """The job's latest shard-aware progress snapshot, or ``None``.

        Read from ``<job_dir>/progress.json`` (written atomically by the
        running campaign), so it works across processes: a CLI pointed
        at the workspace sees the same live numbers as the HTTP API.
        """
        return self._progress_for(self.runner.get(job_id))

    @staticmethod
    def _progress_for(job: Job) -> dict | None:
        # ``progress.json`` is advisory: a corrupt, truncated, or
        # otherwise unreadable snapshot (a crash mid-write, a stray
        # directory, bad encoding) must degrade to "no progress", never
        # crash a job view.  Anything the read raises lands here —
        # decode errors (``json.JSONDecodeError``/``UnicodeDecodeError``
        # are ``ValueError``\ s), filesystem errors, and pathological
        # payloads (e.g. nesting deep enough to exhaust the recursion
        # limit raises ``RecursionError``).
        if job.directory is None:
            return None
        try:
            data = read_json(job.directory / "progress.json")
        except (OSError, ValueError, RecursionError):
            return None
        return data if isinstance(data, dict) else None

    def wait(self, job_id: str, timeout: float | None = None) -> Job:
        job = self.runner.wait(job_id, timeout)
        job.progress = self._progress_for(job)
        return job

    def cancel(self, job_id: str) -> Job:
        """Request cancellation of a queued or running job (idempotent).

        A queued job retires immediately; a running campaign stops at
        the next between-experiments checkpoint and lands in the
        ``cancelled`` state with its partial result stream persisted.
        """
        job = self.runner.cancel(job_id)
        job.progress = self._progress_for(job)
        return job

    # -- results ---------------------------------------------------------------------

    def _job_dir(self, job: Job) -> Path:
        """The job's directory, or a clear error when it has none.

        A job without a directory used to resolve artifact paths against
        the *current working directory* (``Path() / "report.txt"``),
        silently reading whatever happened to be there.
        """
        if job.directory is None:
            raise FileNotFoundError(
                f"job {job.job_id} has no directory on disk; its artifacts "
                "(report, summary, experiments) are unavailable"
            )
        return job.directory

    def report_text(self, job_id: str) -> str:
        job = self.runner.get(job_id)
        path = self._job_dir(job) / "report.txt"
        if not path.exists():
            raise FileNotFoundError(
                f"job {job_id} has no report (status: {job.status})"
            )
        return path.read_text(encoding="utf-8")

    def result_summary(self, job_id: str) -> dict:
        job = self.runner.get(job_id)
        path = self._job_dir(job) / "summary.json"
        if not path.exists():
            raise FileNotFoundError(
                f"job {job_id} has no summary (status: {job.status})"
            )
        return read_json(path)

    def experiments(self, job_id: str) -> list[ExperimentResult]:
        """Recorded experiments of a job, sorted by experiment id.

        Reads the job's result stream; safe to call on a job that was
        killed mid-campaign (a truncated trailing line is skipped) or on
        a cancelled job (the partial stream is returned).
        """
        from repro.orchestrator.stream import ExperimentStream

        job = self.runner.get(job_id)
        path = self._job_dir(job) / "experiments.jsonl"
        return sorted(ExperimentStream(path).load(),
                      key=lambda experiment: experiment.experiment_id)

    def experiments_path(self, job_id: str) -> Path:
        """Where the job's raw ``experiments.jsonl`` stream lives (the
        HTTP layer serves it verbatim as NDJSON)."""
        return self._job_dir(self.runner.get(job_id)) / "experiments.jsonl"

    def generate_regression_tests(self, job_id: str,
                                  dest_dir: str | Path) -> list[Path]:
        """Write one regression test per failed experiment of a job
        (the paper's §I regression-testing use case)."""
        from repro.regression import write_regression_test
        from repro.workload.spec import WorkloadSpec

        job = self.runner.get(job_id)
        config_path = self._job_dir(job) / "config.json"
        if not config_path.exists():
            raise FileNotFoundError(
                f"job {job_id} has no persisted campaign config"
            )
        config = read_json(config_path)
        fault_model = FaultModel.from_dict(config["fault_model"])
        workload = WorkloadSpec.from_dict(config["workload"])
        target_dir = Path(config["target_dir"])
        # Replaying the recorded mutant requires the campaign seed: the
        # per-experiment RNG is keyed on (seed, experiment_id).
        campaign_seed = config.get("seed", 0)
        written = []
        for experiment in self.experiments(job_id):
            if experiment.completed and experiment.failed_round1:
                written.append(write_regression_test(
                    experiment, fault_model, target_dir, workload, dest_dir,
                    campaign_seed=campaign_seed,
                ))
        return written

    # -- remote-backend worker role ---------------------------------------------

    def submit_shard(self, payload: dict) -> dict:
        """Accept one remote-backend shard payload and start executing
        it (the worker side of ``POST /v1/shards``); returns the
        shard's status view.  Raises ``ValueError`` for a malformed
        payload."""
        return self.shards.submit(payload)

    def shard_status(self, shard_id: str) -> dict:
        """One shard's ``{state, total, recorded, cancelled, error}``
        view; raises ``KeyError`` for an unknown shard."""
        return self.shards.status(shard_id)

    def list_shards(self) -> list[dict]:
        """Status views of every shard this worker accepted (operator
        introspection of a worker host)."""
        return self.shards.list()

    def cancel_shard(self, shard_id: str) -> dict:
        """Request cooperative cancellation of a running shard
        (idempotent); the engine observes it between experiments."""
        return self.shards.cancel(shard_id)

    def shard_stream_path(self, shard_id: str) -> Path:
        """Where the shard's raw result stream lives (served as a
        newline-aligned NDJSON tail by the HTTP layer)."""
        return self.shards.stream_path(shard_id)

    # -- content-addressed blobs --------------------------------------------------

    def blob_path(self, digest: str) -> Path:
        """Where a stored blob lives (the HTTP layer serves the file
        verbatim); raises ``KeyError`` for a blob this host lacks and
        ``ValueError`` for a malformed digest."""
        path = self.blobs.path(digest)
        if not path.is_file():
            raise KeyError(f"unknown blob {digest}")
        return path

    def put_blob(self, digest: str, data: bytes) -> str:
        """Store one content-addressed blob (idempotent); the content
        is verified against ``digest`` — raises ``ValueError`` on
        mismatch."""
        return self.blobs.put_bytes(data, digest=digest)

    def missing_blobs(self, digests: list[str]) -> list[str]:
        """Which of ``digests`` this host's blob store lacks — the
        dispatcher uploads only those before submitting a shard."""
        return self.blobs.missing(digests)

    # -- worker fleet registry ---------------------------------------------------

    def register_worker(self, payload: dict) -> dict:
        """Grant a lease to the worker described by ``payload``
        (``{"url": ..., "max_concurrent": ..., "managed": ...}``);
        raises ``ValueError`` for a malformed payload."""
        return self.registry.register_worker(payload)

    def worker_heartbeat(self, worker_id: str,
                         load: dict | None = None) -> dict:
        """Refresh a worker's lease with its live load; raises
        ``KeyError`` for an unknown id and
        :class:`~repro.service.registry.LeaseExpiredError` for a dead
        or replaced lease (the worker must re-register)."""
        return self.registry.heartbeat(worker_id, load)

    def list_workers(self) -> list[dict]:
        """Every registered worker's view, lease states swept."""
        return self.registry.list_workers()

    # -- cross-campaign statistics -------------------------------------------

    def stats_add(self, stream_path: str | Path) -> dict:
        """Register an experiment stream with the statistical store
        (completed job streams register automatically)."""
        return self.stats.add(stream_path)

    def stats_campaigns(self, campaign: str | None = None) -> list[dict]:
        """Campaigns indexed in the statistical result store."""
        return self.stats.campaigns(campaign)

    def stats_aggregate(self, campaign: str | None = None,
                        spec: str | None = None,
                        file: str | None = None,
                        component: str | None = None,
                        confidence: float = 0.95,
                        rules: list[ClassificationRule] | None = None,
                        ) -> dict:
        """Per-failure-mode Wilson estimates across stored campaigns."""
        return self.stats.aggregate(
            campaign=campaign, spec=spec, file=file, component=component,
            confidence=confidence, rules=rules,
        )

    def close(self) -> None:
        """Stop the job scheduler (used by the HTTP server on shutdown)."""
        self.runner.close()

    def _persist_result(self, job_dir: Path, result: CampaignResult,
                        report: CampaignReport) -> None:
        write_json(job_dir / "summary.json", result.summary())
        (job_dir / "report.txt").write_text(report.render() + "\n",
                                            encoding="utf-8")
        # The campaign normally streamed straight into the job directory;
        # only materialize a copy when the results live elsewhere (e.g. a
        # caller-pinned results_path).  Compare resolved paths: job_dir
        # may be relative (the CLI's default workspace) while the
        # campaign resolved its results_path.
        stream_path = job_dir / "experiments.jsonl"
        if (result.experiments_path is None
                or Path(result.experiments_path).resolve()
                != stream_path.resolve()):
            # Carry the campaign meta line over so the copy keeps its
            # store-index fingerprint (name/seed/faultload/target).
            meta = None
            if (result.experiments_path is not None
                    and Path(result.experiments_path).is_file()):
                meta = ExperimentStream(result.experiments_path).read_meta()
            with open(stream_path, "w", encoding="utf-8") as handle:
                handle.write(json.dumps(
                    {"meta": meta or {"campaign": result.name}},
                    sort_keys=True) + "\n")
                for experiment in result.experiments:
                    handle.write(json.dumps(experiment.to_dict()) + "\n")
        # Index the finished stream for cross-campaign /v1/stats queries
        # (best-effort: a failed registration never fails the job).
        try:
            self.stats.add(stream_path, summary=result.summary())
        except (OSError, ValueError):
            pass
