"""Fault injection as-a-service: job registry and service facade."""

from repro.service.jobs import COMPLETED, FAILED, QUEUED, RUNNING, Job, JobRunner
from repro.service.service import ProFIPyService

__all__ = [
    "COMPLETED",
    "FAILED",
    "Job",
    "JobRunner",
    "ProFIPyService",
    "QUEUED",
    "RUNNING",
]
