"""Fault injection as-a-service: scheduler, service core, API, transports.

Layering::

    tenants.py   tenant directory, quotas, token auth, rate limiting
    jobs.py      bounded tenant-fair job scheduler (queued/.../cancelled)
    service.py   ProFIPyService — the behavioural core, in-process facade
    api.py       versioned /v1 schemas + error codes over the core
    http.py      stdlib HTTP server mounting the API   (profipy serve)
    client.py    ProFIPyClient — HTTP SDK mirroring ProFIPyService
"""

from repro.service.jobs import (
    CANCELLED,
    COMPLETED,
    FAILED,
    QUEUED,
    RUNNING,
    TERMINAL_STATES,
    Job,
    JobCancelled,
    JobRunner,
)
from repro.service.service import ProFIPyService
from repro.service.tenants import (
    DEFAULT_TENANT,
    AuthenticationError,
    QuotaExceededError,
    TenantDirectory,
    TenantForbiddenError,
    TenantSpec,
)

__all__ = [
    "CANCELLED",
    "COMPLETED",
    "DEFAULT_TENANT",
    "FAILED",
    "AuthenticationError",
    "Job",
    "JobCancelled",
    "JobRunner",
    "ProFIPyClient",
    "ProFIPyService",
    "QUEUED",
    "QuotaExceededError",
    "RUNNING",
    "TERMINAL_STATES",
    "TenantDirectory",
    "TenantForbiddenError",
    "TenantSpec",
]


def __getattr__(name: str):
    # ProFIPyClient is exported lazily so importing the service package
    # (e.g. from the orchestrator) does not pull in urllib/http modules.
    if name == "ProFIPyClient":
        from repro.service.client import ProFIPyClient

        return ProFIPyClient
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")
