"""Command-line interface to the ProFIPy service layer.

Subcommands mirror the workflow phases (paper Fig. 2)::

    profipy models list                       # fault model registry
    profipy models show gswfit
    profipy models export gswfit out.json
    profipy scan TARGET --model gswfit        # Scan phase
    profipy mutate FILE --model gswfit --spec MFC --ordinal 0
    profipy campaign TARGET --model gswfit --run-cmd '...'   # Execution
    profipy casestudy --campaign wrong_inputs # the §V case study
    profipy serve --port 8080                 # the /v1 HTTP service API
    profipy serve --tenants tenants.json      # multi-tenant mode (auth on)
    profipy tenants list                      # tenant quotas + live load
    profipy worker --join URL                 # join a coordinator's fleet
    profipy jobs list [--server URL --token T]  # jobs, local or remote
    profipy workers list [--server URL]       # the registered fleet
"""

from __future__ import annotations

import argparse
import sys
import tempfile
import time
from pathlib import Path

from repro.analysis.report import summary_table
from repro.casestudy import run_case_study
from repro.faultmodel.casestudy import ALL_CAMPAIGNS
from repro.faultmodel.library import predefined_models
from repro.faultmodel.model import FaultModel
from repro.orchestrator.campaign import CampaignConfig
from repro.scanner.scan import scan_tree
from repro.service.service import ProFIPyService
from repro.stats.config import SamplingConfig
from repro.stats.sampler import STRATIFY_CHOICES
from repro.workload.spec import WorkloadSpec


def _load_model(args) -> FaultModel:
    if getattr(args, "model_file", None):
        return FaultModel.load(args.model_file)
    name = args.model
    predefined = predefined_models()
    if name in predefined:
        return predefined[name]
    path = Path(name)
    if path.exists():
        return FaultModel.load(path)
    raise SystemExit(
        f"unknown fault model {name!r} "
        f"(predefined: {sorted(predefined)}; or pass a JSON path)"
    )


# -- models ---------------------------------------------------------------------


def cmd_models(args) -> int:
    service = ProFIPyService(args.workspace)
    if args.models_command == "list":
        print("predefined:")
        for name, model in sorted(predefined_models().items()):
            print(f"  {name}: {len(model.faults)} fault types")
        stored = service.stored_models()
        if stored:
            print("stored:")
            for name in stored:
                print(f"  {name}")
        return 0
    if args.models_command == "show":
        model = _load_model(args)
        print(f"fault model {model.name}: {model.description}")
        for fault in model.faults:
            flag = "" if fault.enabled else " (disabled)"
            print(f"\n[{fault.name}] {fault.odc_class}{flag}")
            print(f"  {fault.description}")
            print("  " + "\n  ".join(fault.spec.raw.strip().splitlines()))
        return 0
    if args.models_command == "export":
        model = _load_model(args)
        model.save(args.output)
        print(f"wrote {args.output}")
        return 0
    raise SystemExit(f"unknown models command {args.models_command!r}")


# -- scan -----------------------------------------------------------------------


def cmd_scan(args) -> int:
    from repro.scanner.cache import ScanCache

    model = _load_model(args)
    cache = ScanCache(args.cache_dir) if args.cache_dir else None
    result = scan_tree(args.target, model.enabled_specs(), jobs=args.jobs,
                       cache=cache, incremental=not args.no_incremental)
    for point in result.points:
        print(f"{point.point_id}  line {point.lineno}  {point.snippet}")
    print(
        f"\n{len(result.points)} injection points in "
        f"{result.files_scanned} files "
        f"({len(result.by_spec())} fault types matched)",
        file=sys.stderr,
    )
    for file, error in result.parse_errors.items():
        print(f"warning: could not parse {file}: {error}", file=sys.stderr)
    return 0


# -- mutate -----------------------------------------------------------------------


def cmd_mutate(args) -> int:
    from repro.common.rng import SeededRandom
    from repro.dsl.compiler import compile_spec
    from repro.mutator.mutate import Mutator

    model = _load_model(args)
    fault = model.get(args.spec)
    compiled = compile_spec(fault.spec)
    source = Path(args.target).read_text(encoding="utf-8")
    mutator = Mutator(trigger=not args.no_trigger,
                      rng=SeededRandom(args.seed))
    mutation = mutator.mutate_source(source, compiled, args.ordinal,
                                     file=Path(args.target).name)
    if args.output:
        Path(args.output).write_text(mutation.source, encoding="utf-8")
        print(f"wrote {args.output} ({mutation.describe()})",
              file=sys.stderr)
    else:
        print(mutation.source, end="")
    return 0


# -- campaign ----------------------------------------------------------------------


def cmd_campaign(args) -> int:
    model = _load_model(args)
    workload = WorkloadSpec(
        service_commands=args.service_cmd or [],
        commands=args.run_cmd,
        ready_file=args.ready_file,
        command_timeout=args.timeout,
    )
    workspace = Path(args.workspace) if args.workspace else None
    sampling = None
    if (args.sample_margin is not None or args.stratify_by
            or args.min_sample):
        sampling = SamplingConfig(
            max_experiments=args.sample,
            min_experiments=args.min_sample or 0,
            margin=args.sample_margin,
            confidence=args.sample_confidence,
            stratify_by=args.stratify_by,
        )
    config = CampaignConfig(
        name=args.name,
        target_dir=Path(args.target),
        fault_model=model,
        workload=workload,
        injectable_files=args.files or None,
        trigger=not args.no_trigger,
        coverage=not args.no_coverage,
        sample=args.sample,
        sampling=sampling,
        parallelism=args.parallel,
        backend=args.backend,
        shards=args.shards,
        workers=args.worker or None,
        registry_url=args.registry,
        scan_jobs=args.scan_jobs,
        scan_cache_dir=(Path(args.scan_cache) if args.scan_cache else None),
        scan_incremental=not args.no_incremental_scan,
        seed=args.seed,
        workspace=workspace,
        keep_artifacts=args.keep_artifacts,
        resume=not args.no_resume,
    )
    service = ProFIPyService(args.workspace)
    job = service.submit_campaign(config, block=True,
                                  resume_from=args.resume_from)
    if job.status != "completed":
        print(f"campaign job {job.job_id} failed:\n{job.error}",
              file=sys.stderr)
        return 1
    print(service.report_text(job.job_id))
    summary = service.result_summary(job.job_id)
    if summary.get("resumed"):
        print(f"(resumed: {summary['resumed']} experiments replayed from "
              "the result stream)", file=sys.stderr)
    if summary.get("artifacts_dir"):
        print(f"(campaign artifacts kept at {summary['artifacts_dir']}; "
              f"workspace {summary.get('workspace')})", file=sys.stderr)
    print(f"(job {job.job_id}; run 'profipy regression {job.job_id}' to "
          "generate regression tests)", file=sys.stderr)
    return 0


# -- serve / jobs / regression ---------------------------------------------------------


def cmd_serve(args) -> int:
    from repro.service.http import serve

    serve(args.workspace, host=args.host, port=args.port,
          max_workers=args.max_workers, tenants=args.tenants)
    return 0


def cmd_worker(args) -> int:
    """Serve the worker role for remote-backend campaigns.

    A worker is a full ``/v1`` service instance — the shard endpoints
    (``POST /v1/shards`` …) are what a dispatching campaign's remote
    backend talks to.  Run one per execution host and either point
    ``profipy campaign --backend remote --worker URL`` at them, or give
    each worker ``--join COORDINATOR_URL`` and point campaigns at the
    coordinator with ``--registry`` — joined workers register, heartbeat
    their live load, and are placed/health-tracked automatically.
    """
    from repro.service.http import serve

    serve(args.workspace, host=args.host, port=args.port,
          max_workers=args.max_workers, role="worker",
          join=args.join, advertise=args.advertise,
          blob_cache=args.blob_cache, blob_cache_limit=args.blob_cache_limit)
    return 0


def _jobs_facade(args):
    """The service to talk to: a workspace (in-process) or a running
    server (HTTP client) — both expose the same method surface.
    ``--token`` authenticates against a tenant-enabled server."""
    if getattr(args, "server", None):
        from repro.service.client import ProFIPyClient

        return ProFIPyClient(args.server,
                             token=getattr(args, "token", None))
    return ProFIPyService(args.workspace)


def _stamp(epoch: float | None) -> str:
    if not epoch:
        return "-"
    return time.strftime("%Y-%m-%d %H:%M:%S", time.localtime(epoch))


def _progress_cell(job) -> str:
    """Live shard progress as ``done/total`` (``-`` before execution)."""
    progress = getattr(job, "progress", None)
    if not progress:
        return "-"
    done = progress.get("experiments_done")
    total = progress.get("experiments_total")
    if done is None or total is None:
        return "-"
    return f"{done}/{total}"


def cmd_tenants(args) -> int:
    """Operator view of the configured tenants (quotas + live load)."""
    service = ProFIPyService(args.workspace, tenants=args.tenants)
    if args.tenants_command == "list":
        views = service.tenant_views()
        if not views:
            print(f"no tenants configured in workspace {args.workspace} "
                  "(single-user mode)")
            return 0
        print(f"{'tenant':<16} {'run':>3} {'max':>4} {'queued':>6} "
              f"{'maxq':>5} {'blob used':>12} {'blob max':>12} {'rps':>6}")

        def _cell(value) -> str:
            return "-" if value is None else str(value)

        for view in views:
            print(f"{view['name']:<16} {view['running']:>3} "
                  f"{_cell(view['max_running']):>4} {view['queued']:>6} "
                  f"{_cell(view['max_queued']):>5} "
                  f"{view['blob_bytes_used']:>12} "
                  f"{_cell(view['max_blob_bytes']):>12} "
                  f"{_cell(view['requests_per_second']):>6}")
        return 0
    raise SystemExit(f"unknown tenants command {args.tenants_command!r}")


def cmd_jobs(args) -> int:
    service = _jobs_facade(args)
    if args.jobs_command == "list":
        jobs = service.list_jobs()
        if not jobs:
            where = args.server or f"workspace {args.workspace}"
            print(f"no jobs in {where}")
            return 0
        print(f"{'JOB':<10} {'STATUS':<10} {'PROGRESS':<10} "
              f"{'SUBMITTED':<20} {'STARTED':<20} {'FINISHED':<20} NAME")
        for job in jobs:
            print(f"{job.job_id:<10} {job.status:<10} "
                  f"{_progress_cell(job):<10} "
                  f"{_stamp(job.submitted_at):<20} "
                  f"{_stamp(job.started_at):<20} "
                  f"{_stamp(job.finished_at):<20} {job.name}")
        return 0
    if args.jobs_command == "report":
        print(service.report_text(args.job_id))
        return 0
    if args.jobs_command == "cancel":
        job = service.cancel(args.job_id)
        print(f"{job.job_id}  {job.status}")
        return 0
    if args.jobs_command == "wait":
        try:
            job = service.wait(args.job_id, timeout=args.timeout)
        except TimeoutError as error:
            print(str(error), file=sys.stderr)
            return 1
        print(f"{job.job_id}  {job.status}")
        return 0 if job.status == "completed" else 1
    raise SystemExit(f"unknown jobs command {args.jobs_command!r}")


def _load_cell(view: dict) -> str:
    load = view.get("load")
    if not load:
        return "-"
    capacity = load.get("max_concurrent", view.get("max_concurrent"))
    busy = (load.get("running") or 0) + (load.get("queued") or 0)
    return f"{busy}/{capacity if capacity is not None else '?'}"


def cmd_workers(args) -> int:
    service = _jobs_facade(args)
    if args.workers_command == "list":
        workers = service.list_workers()
        if not workers:
            where = args.server or f"workspace {args.workspace}"
            print(f"no registered workers in {where}")
            return 0
        print(f"{'WORKER':<14} {'STATE':<9} {'LOAD':<7} {'AGE':<9} "
              f"{'MANAGED':<8} URL")
        for view in workers:
            age = view.get("seconds_since_heartbeat")
            print(f"{view['worker_id']:<14} {view['state']:<9} "
                  f"{_load_cell(view):<7} "
                  f"{(f'{age:.1f}s' if age is not None else '-'):<9} "
                  f"{('yes' if view.get('managed') else 'no'):<8} "
                  f"{view['url']}")
        return 0
    raise SystemExit(f"unknown workers command {args.workers_command!r}")


def cmd_stats(args) -> int:
    service = _jobs_facade(args)
    if args.stats_command == "add":
        if getattr(args, "server", None):
            raise SystemExit(
                "stats add registers a local stream file; it only works "
                "against a local workspace (drop --server)")
        for stream in args.streams:
            entry = service.stats_add(stream)
            print(f"indexed {entry['campaign'] or '?'}: {entry['stream']} "
                  f"({entry['experiments']} experiments)")
        return 0
    if args.stats_command == "list":
        rows = service.stats_campaigns()
        if not rows:
            where = (getattr(args, "server", None)
                     or f"workspace {args.workspace}")
            print(f"no campaigns indexed in {where}")
            return 0
        print(f"{'CAMPAIGN':<18} {'SEED':<6} {'EXPERIMENTS':<12} "
              f"{'EARLY-STOP':<10} STREAM")
        for row in rows:
            stopped = "yes" if row.get("stopped_early") else "no"
            print(f"{str(row.get('campaign') or '?'):<18} "
                  f"{str(row.get('seed', '?')):<6} "
                  f"{row.get('experiments', 0):<12} "
                  f"{stopped:<10} {row['stream']}")
        return 0
    if args.stats_command == "aggregate":
        report = service.stats_aggregate(
            campaign=args.campaign, spec=args.spec, file=args.file,
            component=args.component, confidence=args.confidence,
        )
        n = report.get("experiments", 0)
        campaigns = report.get("campaigns", [])
        confidence = report.get("confidence", args.confidence)
        print(f"{len(campaigns)} campaign(s), {n} experiments, "
              f"{100.0 * confidence:.0f}% Wilson intervals")
        modes = report.get("modes", {})
        if not modes:
            print("(no experiments matched the filters)")
            return 0
        print(f"{'FAILURE MODE':<22} {'COUNT':<7} {'ESTIMATE':<10} "
              f"{'INTERVAL':<18} MARGIN")
        for mode in sorted(modes):
            row = modes[mode]
            interval = f"[{row['low']:.3f}, {row['high']:.3f}]"
            print(f"{mode:<22} {row['count']:<7} "
                  f"{row['proportion']:<10.3f} {interval:<18} "
                  f"{row['margin']:.3f}")
        return 0
    raise SystemExit(f"unknown stats command {args.stats_command!r}")


def cmd_regression(args) -> int:
    service = ProFIPyService(args.workspace)
    written = service.generate_regression_tests(args.job_id, args.out)
    if not written:
        print("no failed experiments in this job; nothing to generate",
              file=sys.stderr)
        return 1
    for path in written:
        print(path)
    print(f"\n{len(written)} regression test(s) written to {args.out}",
          file=sys.stderr)
    return 0


# -- casestudy ----------------------------------------------------------------------


def cmd_casestudy(args) -> int:
    campaigns = (list(ALL_CAMPAIGNS) if args.campaign == "all"
                 else [args.campaign])
    workspace = Path(args.workspace or tempfile.mkdtemp(prefix="profipy-cs-"))
    reports = []
    for campaign in campaigns:
        result, report = run_case_study(
            campaign,
            workspace=workspace,
            command_timeout=args.timeout,
            sample=args.sample,
            parallelism=args.parallel,
            progress=lambda msg: print(msg, file=sys.stderr),
        )
        reports.append(report)
        print(f"\n######## {campaign} ########")
        print(report.render())
    if len(reports) > 1:
        print("\n######## overall (§V) ########")
        print(summary_table(reports))
    return 0


# -- parser -------------------------------------------------------------------------


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="profipy",
        description="Programmable software fault injection for Python "
                    "(ProFIPy reproduction)",
    )
    parser.add_argument("--workspace", default=".profipy",
                        help="service workspace directory")
    sub = parser.add_subparsers(dest="command", required=True)

    models = sub.add_parser("models", help="fault model registry")
    models_sub = models.add_subparsers(dest="models_command", required=True)
    models_sub.add_parser("list", help="list available fault models")
    show = models_sub.add_parser("show", help="print a fault model")
    show.add_argument("model")
    show.add_argument("--model-file")
    export = models_sub.add_parser("export", help="export a model to JSON")
    export.add_argument("model")
    export.add_argument("output")
    export.add_argument("--model-file")
    models.set_defaults(func=cmd_models)

    scan = sub.add_parser("scan", help="find injection points")
    scan.add_argument("target", help="file or directory to scan")
    scan.add_argument("--model", default="gswfit")
    scan.add_argument("--model-file")
    scan.add_argument("--jobs", type=int, default=1,
                      help="scan worker processes (warm workers: specs are "
                           "compiled once per worker)")
    scan.add_argument("--cache-dir",
                      help="content-addressed scan cache directory; "
                           "re-scans of unchanged files are free")
    scan.add_argument("--no-incremental", action="store_true",
                      help="ignore the cache's stat/tree manifests and "
                           "re-read + re-hash every file (per-file cache "
                           "entries still apply)")
    scan.set_defaults(func=cmd_scan)

    mutate = sub.add_parser("mutate", help="generate one mutated version")
    mutate.add_argument("target", help="Python file to mutate")
    mutate.add_argument("--model", default="gswfit")
    mutate.add_argument("--model-file")
    mutate.add_argument("--spec", required=True, help="fault type name")
    mutate.add_argument("--ordinal", type=int, default=0)
    mutate.add_argument("--no-trigger", action="store_true")
    mutate.add_argument("--seed", type=int, default=0)
    mutate.add_argument("-o", "--output")
    mutate.set_defaults(func=cmd_mutate)

    campaign = sub.add_parser("campaign", help="run a full campaign")
    campaign.add_argument("target", help="target project directory")
    campaign.add_argument("--name", default="campaign")
    campaign.add_argument("--model", default="gswfit")
    campaign.add_argument("--model-file")
    campaign.add_argument("--run-cmd", action="append", required=True,
                          help="workload command (repeatable)")
    campaign.add_argument("--service-cmd", action="append",
                          help="service command (repeatable)")
    campaign.add_argument("--ready-file")
    campaign.add_argument("--files", action="append",
                          help="injectable file (relative, repeatable)")
    campaign.add_argument("--timeout", type=float, default=60.0)
    campaign.add_argument("--sample", type=int,
                          help="cap the plan to a prefix-stable seeded "
                               "sample of this size (raise it and "
                               "re-run to execute only the delta)")
    campaign.add_argument("--sample-margin", type=float, default=None,
                          metavar="EPS",
                          help="stop early once every failure mode's "
                               "Wilson interval half-width falls below "
                               "EPS (statistical early stopping)")
    campaign.add_argument("--sample-confidence", type=float, default=0.95,
                          help="confidence level for the Wilson "
                               "intervals (default: 0.95)")
    campaign.add_argument("--min-sample", type=int, default=0,
                          help="never stop on margins before this many "
                               "experiments")
    campaign.add_argument("--stratify-by", choices=list(STRATIFY_CHOICES),
                          default=None,
                          help="stratify the seeded sample so rare "
                               "files/components/fault types aren't "
                               "starved")
    campaign.add_argument("--parallel", type=int)
    campaign.add_argument("--backend",
                          choices=["thread", "process", "remote"],
                          default="thread",
                          help="execution backend: one in-process pool "
                               "(thread), per-shard worker processes "
                               "(process), or per-shard remote workers "
                               "over the /v1 API (remote, see --worker); "
                               "results are byte-identical")
    campaign.add_argument("--shards", type=int, default=1,
                          help="deterministic shard count for the "
                               "execution phase (independent of results; "
                               "a resumed campaign may change it); with "
                               "--backend process each shard runs at "
                               "least one experiment concurrently, so "
                               "total load is max(--parallel, shards)")
    campaign.add_argument("--worker", action="append", metavar="URL",
                          help="remote worker base URL (repeatable; a "
                               "'profipy worker' instance); shards are "
                               "placed by least load and fail over to "
                               "another worker on connection loss")
    campaign.add_argument("--registry", metavar="URL", default=None,
                          help="coordinator URL whose /v1/workers "
                               "registry supplies the remote-backend "
                               "fleet (workers that ran with --join); "
                               "may be combined with --worker pins")
    campaign.add_argument("--scan-jobs", type=int, default=None,
                          help="worker processes for the scan phase "
                               "(default: in-process indexed scan)")
    campaign.add_argument("--scan-cache", default=None,
                          help="persistent scan-cache directory for "
                               "repeated campaigns over unchanged trees")
    campaign.add_argument("--no-incremental-scan", action="store_true",
                          help="disable the incremental (stat/tree "
                               "manifest) scan fast path")
    campaign.add_argument("--seed", type=int, default=0)
    campaign.add_argument("--no-coverage", action="store_true")
    campaign.add_argument("--no-trigger", action="store_true")
    campaign.add_argument("--keep-artifacts", action="store_true",
                          help="keep the campaign workspace (per-experiment "
                               "JSON artifacts, result stream); its path is "
                               "printed after the run")
    campaign.add_argument("--no-resume", action="store_true",
                          help="re-run every experiment even when the "
                               "workspace already holds a result stream")
    campaign.add_argument("--resume-from", metavar="JOB_ID",
                          help="resume a killed campaign job: experiments "
                               "already recorded in that job's stream are "
                               "not re-run")
    campaign.set_defaults(func=cmd_campaign)

    serve = sub.add_parser(
        "serve", help="run the versioned HTTP service API (/v1)"
    )
    serve.add_argument("--host", default="127.0.0.1")
    serve.add_argument("--port", type=int, default=8080)
    serve.add_argument("--max-workers", type=int, default=None,
                       help="concurrent campaign jobs (bounded scheduler)")
    serve.add_argument("--tenants", metavar="FILE", default=None,
                       help="tenants.json with per-tenant bearer tokens "
                            "and quotas; turns on authentication, "
                            "namespaces, fair-share scheduling, and rate "
                            "limits (default: <workspace>/tenants.json "
                            "when present, else open single-user mode)")
    serve.set_defaults(func=cmd_serve)

    tenants = sub.add_parser(
        "tenants",
        help="inspect configured tenants (quotas and live queue load)",
    )
    tenants.add_argument("--tenants", metavar="FILE", default=None,
                         help="tenants.json to read (default: "
                              "<workspace>/tenants.json)")
    tenants_sub = tenants.add_subparsers(dest="tenants_command",
                                         required=True)
    tenants_sub.add_parser(
        "list",
        help="list tenants (running/queued jobs, quotas; tokens "
             "are never printed)",
    )
    tenants.set_defaults(func=cmd_tenants)

    worker = sub.add_parser(
        "worker",
        help="serve the remote-backend worker role (accepts shard "
             "payloads on POST /v1/shards)",
    )
    worker.add_argument("--host", default="127.0.0.1")
    worker.add_argument("--port", type=int, default=8081)
    worker.add_argument("--max-workers", type=int, default=None,
                        help="concurrent campaign jobs, should this "
                             "worker also serve campaigns")
    worker.add_argument("--join", metavar="URL", default=None,
                        help="register with this coordinator's worker "
                             "registry and heartbeat a lease (campaigns "
                             "pointed at the coordinator with --registry "
                             "then place shards here automatically)")
    worker.add_argument("--advertise", metavar="URL", default=None,
                        help="base URL to register under (default: the "
                             "listen address; set when the coordinator "
                             "must reach this worker through NAT or a "
                             "different interface)")
    worker.add_argument("--blob-cache", metavar="DIR", default=None,
                        help="content-addressed blob cache directory for "
                             "shipped target images (default: "
                             "<workspace>/blobs; share it between worker "
                             "instances on one host to pool downloads)")
    worker.add_argument("--blob-cache-limit", metavar="BYTES", type=int,
                        default=None,
                        help="evict least-recently-used blobs once the "
                             "cache exceeds this many bytes (default: "
                             "unbounded)")
    worker.set_defaults(func=cmd_worker)

    jobs = sub.add_parser("jobs", help="inspect campaign jobs")
    jobs.add_argument("--server", metavar="URL",
                      help="talk to a running 'profipy serve' instance "
                           "instead of the local workspace")
    jobs.add_argument("--token", metavar="TOKEN", default=None,
                      help="bearer token for a tenant-enabled server")
    jobs_sub = jobs.add_subparsers(dest="jobs_command", required=True)
    jobs_sub.add_parser("list",
                        help="list jobs (id, status, timestamps, name)")
    jobs_report = jobs_sub.add_parser("report", help="print a job report")
    jobs_report.add_argument("job_id")
    jobs_cancel = jobs_sub.add_parser(
        "cancel", help="cancel a queued or running job"
    )
    jobs_cancel.add_argument("job_id")
    jobs_wait = jobs_sub.add_parser(
        "wait", help="block until a job reaches a terminal state"
    )
    jobs_wait.add_argument("job_id")
    jobs_wait.add_argument("--timeout", type=float, default=None)
    jobs.set_defaults(func=cmd_jobs)

    workers = sub.add_parser(
        "workers", help="inspect the registered worker fleet"
    )
    workers.add_argument("--server", metavar="URL",
                         help="talk to a running coordinator instead of "
                              "the local workspace")
    workers.add_argument("--token", metavar="TOKEN", default=None,
                         help="bearer token for a tenant-enabled server")
    workers_sub = workers.add_subparsers(dest="workers_command",
                                         required=True)
    workers_sub.add_parser(
        "list",
        help="list registered workers (id, lease state, live load, "
             "heartbeat age, URL)",
    )
    workers.set_defaults(func=cmd_workers)

    stats = sub.add_parser(
        "stats",
        help="cross-campaign statistical result store: per-failure-mode "
             "Wilson estimates over stored experiment streams",
    )
    stats.add_argument("--workspace", default=".profipy")
    stats.add_argument("--server", metavar="URL",
                       help="talk to a running service instead of the "
                            "local workspace")
    stats.add_argument("--token", metavar="TOKEN", default=None,
                       help="bearer token for a tenant-enabled server")
    stats_sub = stats.add_subparsers(dest="stats_command", required=True)
    stats_sub.add_parser(
        "list",
        help="list indexed campaigns (name, seed, experiments, stream)",
    )
    stats_add = stats_sub.add_parser(
        "add",
        help="index experiment stream files (completed service jobs "
             "register automatically)",
    )
    stats_add.add_argument("streams", nargs="+", metavar="STREAM",
                           help="experiments.jsonl path")
    stats_agg = stats_sub.add_parser(
        "aggregate",
        help="aggregate per-mode counts and Wilson estimates across "
             "stored campaigns",
    )
    stats_agg.add_argument("--campaign", default=None,
                           help="only campaigns with this name")
    stats_agg.add_argument("--spec", default=None,
                           help="only points injected by this spec")
    stats_agg.add_argument("--file", default=None,
                           help="only points in this file")
    stats_agg.add_argument("--component", default=None,
                           help="only points in this component")
    stats_agg.add_argument("--confidence", type=float, default=0.95)
    stats.set_defaults(func=cmd_stats)

    regression = sub.add_parser(
        "regression",
        help="generate regression tests from a job's failed experiments",
    )
    regression.add_argument("job_id")
    regression.add_argument("--out", default="regression_tests")
    regression.set_defaults(func=cmd_regression)

    casestudy = sub.add_parser("casestudy",
                               help="reproduce the §V case study")
    casestudy.add_argument("--campaign", default="all",
                           choices=list(ALL_CAMPAIGNS) + ["all"])
    casestudy.add_argument("--sample", type=int)
    casestudy.add_argument("--timeout", type=float, default=45.0)
    casestudy.add_argument("--parallel", type=int)
    casestudy.set_defaults(func=cmd_casestudy)
    return parser


def main(argv: list[str] | None = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)
    return args.func(args)


if __name__ == "__main__":
    raise SystemExit(main())
