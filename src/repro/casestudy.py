"""One-call reproduction of the paper's case study (§V).

Wires together the etcd simulator target, the Table I fault models, the
integration-test workload, and the failure-mode rules observed in the
paper, so examples/benchmarks/CLI can run any of the three campaigns with
one function call::

    from repro.casestudy import run_case_study
    result, report = run_case_study("wrong_inputs")
"""

from __future__ import annotations

import tempfile
from pathlib import Path

from repro.analysis.classify import ClassificationRule
from repro.analysis.metrics import ComponentSpec
from repro.analysis.report import CampaignReport
from repro.common.fsutil import remove_tree
from repro.etcdsim.target import INJECTABLE_FILES, materialize_target
from repro.faultmodel.casestudy import ALL_CAMPAIGNS, campaign_model
from repro.orchestrator.campaign import (
    Campaign,
    CampaignConfig,
    CampaignResult,
)
from repro.workload.spec import etcd_case_study_workload

#: Failure modes the paper reports in §V, as classification rules.
#: First match wins, so specific modes precede generic ones.
CASE_STUDY_RULES: list[ClassificationRule] = [
    ClassificationRule(
        mode="none_input_crash",
        pattern=r"AttributeError: 'NoneType' object has no attribute",
        description="§V-B: NoneType has no attribute startswith",
    ),
    ClassificationRule(
        mode="key_not_found",
        pattern=r"EtcdKeyNotFound",
        description="§V-B: wrong key/value injected",
    ),
    ClassificationRule(
        mode="bad_request",
        pattern=r"Bad response: \d+|EtcdValueError|Invalid field",
        description="§V-B: server rejects the corrupted request "
                    "(HTTP 400 family; also 5xx on corrupted verbs)",
    ),
    ClassificationRule(
        mode="compare_failed",
        pattern=r"EtcdCompareFailed|Compare failed",
        description="test_and_set comparison broken by corrupted input",
    ),
    ClassificationRule(
        mode="reconnection_failure",
        pattern=r"EtcdConnectionFailed|Connection to etcd",
        description="§V-A: connection-level failures",
    ),
    ClassificationRule(
        mode="stray_state",
        pattern=r"stray state|unexpected root entries|teardown left",
        description="persistent inconsistent datastore state",
    ),
    ClassificationRule(
        mode="assertion_failure",
        pattern=r"WORKLOAD FAILURE: assertion",
        description="workload consistency check failed",
    ),
    ClassificationRule(
        mode="client_crash",
        pattern=r"WORKLOAD FAILURE: unhandled|Traceback \(most recent call",
        description="§V-A: client process crash due to an exception",
    ),
]

#: Components for failure-propagation analysis: the client (workload
#: output) and the etcd server (its captured logs).
CASE_STUDY_COMPONENTS: list[ComponentSpec] = [
    ComponentSpec(name="pyetcd-client", log_globs=("<output>",),
                  error_pattern=r"WORKLOAD FAILURE|Traceback"),
    ComponentSpec(name="etcd-server", log_globs=(".service-*.err",
                                                 ".service-*.out"),
                  error_pattern=r"Traceback|Exception|ERROR"),
]


def case_study_config(
    campaign: str,
    workspace: Path,
    command_timeout: float = 45.0,
    sample: int | None = None,
    parallelism: int | None = None,
    trigger: bool = True,
    coverage: bool = True,
    seed: int = 0,
) -> CampaignConfig:
    """Build the campaign configuration for one §V campaign."""
    if campaign not in ALL_CAMPAIGNS:
        raise KeyError(
            f"unknown campaign {campaign!r}; available: {ALL_CAMPAIGNS}"
        )
    target_dir = workspace / "target"
    if not target_dir.exists():
        materialize_target(target_dir)
    return CampaignConfig(
        name=campaign,
        target_dir=target_dir,
        fault_model=campaign_model(campaign),
        workload=etcd_case_study_workload(command_timeout=command_timeout),
        injectable_files=list(INJECTABLE_FILES),
        trigger=trigger,
        rounds=2,
        coverage=coverage,
        sample=sample,
        parallelism=parallelism,
        seed=seed,
        workspace=workspace / f"campaign-{campaign}",
    )


def run_case_study(
    campaign: str,
    workspace: str | Path | None = None,
    command_timeout: float = 45.0,
    sample: int | None = None,
    parallelism: int | None = None,
    progress=None,
    seed: int = 0,
) -> tuple[CampaignResult, CampaignReport]:
    """Run one of the three §V campaigns end to end."""
    owns_workspace = workspace is None
    workspace = Path(workspace or tempfile.mkdtemp(prefix="profipy-cs-"))
    workspace.mkdir(parents=True, exist_ok=True)
    try:
        config = case_study_config(
            campaign, workspace,
            command_timeout=command_timeout,
            sample=sample, parallelism=parallelism, seed=seed,
        )
        result = Campaign(config).run(progress=progress)
        report = CampaignReport(result, rules=CASE_STUDY_RULES,
                                components=CASE_STUDY_COMPONENTS)
        return result, report
    finally:
        if owns_workspace:
            remove_tree(workspace)
