"""Failure visualization: event timelines from traced spans (§IV-D).

The paper visualizes instrumented API calls "as events on timelines as
interactive plots"; offline, the same data renders as an ASCII Gantt
chart, one lane per service, plus an event table.  Failed spans are drawn
with ``!`` so the failure is visible at a glance.
"""

from __future__ import annotations

from repro.orchestrator.experiment import ExperimentResult
from repro.tracing.tracer import Span


def experiment_spans(result: ExperimentResult) -> list[Span]:
    """Build spans from an experiment's rounds and commands.

    Gives every experiment a timeline for free (no in-target tracing
    needed): one lane per round, one span per workload command, with
    failures marked — a coarse-grained version of the §IV-D plots.
    """
    spans: list[Span] = []
    cursor = 0.0
    for round_ in result.rounds:
        label = "fault ON" if round_.fault_enabled else "fault OFF"
        round_span = Span(
            service=f"round-{round_.round_no}",
            name=label,
            start=cursor,
            end=cursor + round_.duration,
            status="ok" if not round_.failed else "error: round failed",
        )
        spans.append(round_span)
        offset = cursor
        for command in round_.commands:
            status = "ok"
            if command.timed_out:
                status = "error: timeout"
            elif not command.ok:
                status = f"error: exit {command.returncode}"
            spans.append(Span(
                service=f"round-{round_.round_no}",
                name=command.command.split()[0],
                start=offset,
                end=offset + command.duration,
                parent_id=round_span.span_id,
                status=status,
            ))
            offset += command.duration
        cursor += max(round_.duration, 1e-6)
    return spans


def render_experiment(result: ExperimentResult, width: int = 72) -> str:
    """ASCII timeline of one experiment's two rounds."""
    header = (f"experiment {result.experiment_id} "
              f"[{result.spec_name}] status={result.status}")
    return header + "\n" + render_timeline(experiment_spans(result),
                                           width=width)


def render_timeline(spans: list[Span], width: int = 72) -> str:
    """Render spans as an ASCII timeline grouped by service."""
    closed = [span for span in spans if span.end is not None]
    if not closed:
        return "(no spans recorded)"
    t0 = min(span.start for span in closed)
    t1 = max(span.end for span in closed)
    extent = max(t1 - t0, 1e-9)
    scale = (width - 1) / extent

    services: dict[str, list[Span]] = {}
    for span in closed:
        services.setdefault(span.service, []).append(span)
    label_width = max(len(name) for name in services)

    lines = [
        f"timeline: {extent * 1000:.1f} ms total, "
        f"{len(closed)} spans, {len(services)} service(s)",
        " " * label_width + " 0ms" + (
            f"{extent * 1000:.0f}ms".rjust(width - 3)
        ),
    ]
    for service in sorted(services):
        for span in sorted(services[service], key=lambda s: s.start):
            begin = int((span.start - t0) * scale)
            length = max(1, int(span.duration * scale))
            char = "!" if span.status != "ok" else "#"
            bar = " " * begin + char * min(length, width - begin)
            marker = "" if span.status == "ok" else f"  [{span.status}]"
            lines.append(
                f"{service.ljust(label_width)} |{bar.ljust(width)}| "
                f"{span.name}{marker}"
            )
    return "\n".join(lines)


def render_events(spans: list[Span]) -> str:
    """A flat, chronological event table (one line per span)."""
    closed = sorted(
        (span for span in spans if span.end is not None),
        key=lambda span: span.start,
    )
    if not closed:
        return "(no spans recorded)"
    t0 = closed[0].start
    lines = []
    for span in closed:
        offset = (span.start - t0) * 1000
        duration = span.duration * 1000
        status = "" if span.status == "ok" else f"  <<{span.status}>>"
        args = span.annotations.get("args", "")
        args_part = f"({args})" if args else ""
        lines.append(
            f"+{offset:8.1f}ms {span.service}.{span.name}{args_part} "
            f"[{duration:.1f}ms]{status}"
        )
    return "\n".join(lines)
