"""Failure data analysis (paper §IV-C and §IV-D)."""

from repro.analysis.classify import (
    HARNESS_ERROR,
    NO_FAILURE,
    SERVICE_CRASH,
    SERVICE_START_FAILED,
    TIMEOUT,
    WORKLOAD_CRASH,
    WORKLOAD_FAILURE,
    Classification,
    ClassificationRule,
    Distribution,
    classify_all,
    classify_experiment,
)
from repro.analysis.metrics import (
    AvailabilityReport,
    ComponentSpec,
    LoggingReport,
    PropagationReport,
    failure_logging,
    failure_propagation,
    service_availability,
)
from repro.analysis.report import CampaignReport, format_table, summary_table
from repro.analysis.visualization import (
    experiment_spans,
    render_events,
    render_experiment,
    render_timeline,
)

__all__ = [
    "AvailabilityReport",
    "CampaignReport",
    "Classification",
    "ClassificationRule",
    "ComponentSpec",
    "Distribution",
    "HARNESS_ERROR",
    "LoggingReport",
    "NO_FAILURE",
    "PropagationReport",
    "SERVICE_CRASH",
    "SERVICE_START_FAILED",
    "TIMEOUT",
    "WORKLOAD_CRASH",
    "WORKLOAD_FAILURE",
    "classify_all",
    "classify_experiment",
    "experiment_spans",
    "failure_logging",
    "failure_propagation",
    "format_table",
    "render_events",
    "render_experiment",
    "render_timeline",
    "service_availability",
    "summary_table",
]
