"""Human-readable campaign reports (the Data Analysis box of Fig. 2)."""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.analysis.classify import ClassificationRule, Distribution
from repro.analysis.metrics import (
    AvailabilityReport,
    ComponentSpec,
    LoggingReport,
    PropagationReport,
    failure_logging,
    failure_propagation,
    service_availability,
)
from repro.orchestrator.campaign import CampaignResult


def format_table(headers: list[str], rows: list[list[str]]) -> str:
    """Render an aligned text table."""
    widths = [len(header) for header in headers]
    for row in rows:
        for index, cell in enumerate(row):
            widths[index] = max(widths[index], len(cell))
    lines = [
        "  ".join(header.ljust(widths[i]) for i, header in enumerate(headers)),
        "  ".join("-" * widths[i] for i in range(len(headers))),
    ]
    for row in rows:
        lines.append(
            "  ".join(cell.ljust(widths[i]) for i, cell in enumerate(row))
        )
    return "\n".join(lines)


def percent(numerator: int, denominator: int) -> str:
    if denominator == 0:
        return "n/a"
    return f"{100.0 * numerator / denominator:.0f}%"


@dataclass
class CampaignReport:
    """Aggregated analysis of one campaign's results."""

    result: CampaignResult
    rules: list[ClassificationRule] = field(default_factory=list)
    components: list[ComponentSpec] = field(default_factory=list)
    distribution: Distribution = field(init=False)
    availability: AvailabilityReport = field(init=False)
    logging: LoggingReport = field(init=False)
    propagation: PropagationReport | None = field(init=False, default=None)

    def __post_init__(self) -> None:
        self.distribution = Distribution.build(self.result.experiments,
                                               self.rules)
        self.availability = service_availability(self.result.experiments)
        self.logging = failure_logging(self.result.experiments)
        if self.components:
            self.propagation = failure_propagation(
                self.result.experiments, self.components
            )

    # -- rendering ---------------------------------------------------------------

    def render(self) -> str:
        sections = [
            self._render_headline(),
            self._render_distribution(),
            self._render_by_spec(),
            self._render_metrics(),
            self._render_estimates(),
        ]
        return "\n\n".join(section for section in sections if section)

    def inspect(self, mode: str, max_output: int = 400) -> str:
        """Drill into one failure class: per-experiment logs (§IV-C).

        "The user can drill-down the individual classes of failures, to
        further inspect logs of experiments in that class."
        """
        ids = set(self.distribution.experiments_in_mode(mode))
        if not ids:
            return f"(no experiments classified as {mode!r})"
        sections = []
        for experiment in self.result.experiments:
            if experiment.experiment_id not in ids:
                continue
            round1 = experiment.round(1)
            output = (round1.output if round1 else "").strip()
            if len(output) > max_output:
                output = "..." + output[-max_output:]
            lines = [
                f"--- {experiment.experiment_id} "
                f"[{experiment.spec_name}] ---",
                f"injected : {experiment.original_snippet.splitlines()[0]}"
                if experiment.original_snippet else "injected : <unknown>",
                f"became   : {experiment.mutated_snippet.splitlines()[0]}"
                if experiment.mutated_snippet else "became   : <removed>",
                f"round 2  : "
                f"{'failed' if experiment.failed_round2 else 'recovered'}",
                "output   :",
                output or "  (no output captured)",
            ]
            sections.append("\n".join(lines))
        return "\n\n".join(sections)

    def _render_headline(self) -> str:
        result = self.result
        covered = (str(result.coverage.covered_count)
                   if result.coverage else "n/a")
        rows = [[
            result.name,
            str(result.points_found),
            covered,
            str(result.executed),
            str(len(result.failures)),
        ]]
        return "== Campaign summary ==\n" + format_table(
            ["campaign", "points", "covered", "experiments", "failures"],
            rows,
        )

    def _render_distribution(self) -> str:
        counts = self.distribution.counts()
        if not counts:
            return ""
        total = self.distribution.total
        rows = [
            [mode, str(count), percent(count, total)]
            for mode, count in counts.items()
        ]
        return "== Failure mode distribution ==\n" + format_table(
            ["failure mode", "count", "share"], rows
        )

    def _render_by_spec(self) -> str:
        table = self.distribution.by_spec()
        if not table:
            return ""
        modes = sorted({mode for row in table.values() for mode in row})
        rows = [
            [spec] + [str(row.get(mode, 0)) for mode in modes]
            for spec, row in sorted(table.items())
        ]
        return "== Drill-down by fault type ==\n" + format_table(
            ["fault type"] + modes, rows
        )

    def _render_metrics(self) -> str:
        availability = self.availability
        logging_report = self.logging
        lines = [
            "== Metrics ==",
            (f"service availability (round 2): "
             f"{availability.available}/{availability.total} "
             f"({percent(availability.available, availability.total)})"),
            (f"failure logging: {logging_report.logged}/"
             f"{logging_report.failures} failures logged "
             f"({percent(logging_report.logged, logging_report.failures)})"),
        ]
        result = self.result
        fresh = result.executed - result.resumed
        if result.execution_seconds > 0 and fresh > 0:
            rate = fresh / result.execution_seconds
            lines.append(
                f"execution throughput: {rate:.2f} experiments/s "
                f"({fresh} experiments in {result.execution_seconds:.1f} s)"
            )
        if result.resumed:
            lines.append(
                f"resumed: {result.resumed} experiments replayed from the "
                "result stream (not re-executed)"
            )
        if self.propagation is not None:
            propagation = self.propagation
            lines.append(
                f"failure propagation: {propagation.propagated}/"
                f"{propagation.analyzed} faults affected >1 component "
                f"({percent(propagation.propagated, propagation.analyzed)})"
            )
        return "\n".join(lines)

    def _render_estimates(self) -> str:
        """Per-mode Wilson estimates when a sampling policy was active.

        Empty-denominator ratios elsewhere render as ``n/a`` (via
        :func:`percent`); this section only appears once the campaign
        actually observed experiments under a statistical policy.
        """
        result = self.result
        block = result.stopped_early or result.mode_estimates
        if not block or not block.get("modes"):
            return ""
        confidence = block.get("confidence", 0.95)
        rows = [
            [mode, str(row["count"]), f"{row['proportion']:.3f}",
             f"[{row['low']:.3f}, {row['high']:.3f}]",
             f"{row['margin']:.3f}"]
            for mode, row in sorted(block["modes"].items())
        ]
        lines = [
            (f"== Failure mode estimates (n={block.get('experiments', 0)}, "
             f"{100.0 * confidence:.0f}% Wilson intervals) =="),
            format_table(
                ["failure mode", "count", "estimate", "interval", "margin"],
                rows,
            ),
        ]
        if result.stopped_early is not None:
            lines.append(
                f"stopped early: {result.stopped_early.get('reason')}")
        return "\n".join(lines)


def summary_table(reports: list[CampaignReport]) -> str:
    """The §V cross-campaign table: points / covered / failures per row."""
    rows = []
    for report in reports:
        result = report.result
        covered = (str(result.coverage.covered_count)
                   if result.coverage else "n/a")
        rows.append([
            result.name,
            str(result.points_found),
            covered,
            str(result.executed),
            str(len(result.failures)),
            percent(report.availability.available,
                    report.availability.total),
        ])
    return format_table(
        ["campaign", "points", "covered", "experiments", "failures",
         "available r2"],
        rows,
    )
