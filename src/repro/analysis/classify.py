"""Failure-mode classification (paper §IV-C).

Experiments are classified into failure modes: built-in ones (crash,
timeout of the target, harness problems) plus user-defined modes matched
by keywords/regex over the outputs and logs — exactly the drill-down the
paper describes.  User rules take precedence, in the order given, so a
specific mode (e.g. ``bad_request``) wins over the generic workload
failure.
"""

from __future__ import annotations

import re
from dataclasses import dataclass, field

from repro.orchestrator.experiment import (
    STATUS_HARNESS_ERROR,
    STATUS_SERVICE_START_FAILED,
    ExperimentResult,
)

# Built-in failure modes.
NO_FAILURE = "no_failure"
WORKLOAD_FAILURE = "workload_failure"
WORKLOAD_CRASH = "workload_crash"
TIMEOUT = "timeout"
SERVICE_CRASH = "service_crash"
SERVICE_START_FAILED = "service_start_failed"
HARNESS_ERROR = "harness_error"


@dataclass(frozen=True)
class ClassificationRule:
    """A user-defined failure mode: first regex match wins."""

    mode: str
    pattern: str
    scope: str = "any"  # "output" | "logs" | "any"
    description: str = ""

    def matches(self, output: str, logs: str) -> bool:
        compiled = re.compile(self.pattern, re.MULTILINE)
        if self.scope in ("output", "any") and compiled.search(output):
            return True
        if self.scope in ("logs", "any") and compiled.search(logs):
            return True
        return False


@dataclass
class Classification:
    """The failure modes assigned to one experiment."""

    experiment_id: str
    spec_name: str
    component: str
    mode: str
    round1_failed: bool
    round2_failed: bool

    @property
    def is_failure(self) -> bool:
        return self.mode != NO_FAILURE


def classify_experiment(
    result: ExperimentResult,
    rules: list[ClassificationRule] | None = None,
) -> Classification:
    """Assign one failure mode to an experiment (round 1 behaviour)."""
    rules = rules or []
    component = str(result.point.get("component", ""))
    base = dict(
        experiment_id=result.experiment_id,
        spec_name=result.spec_name,
        component=component,
        round1_failed=result.failed_round1,
        round2_failed=result.failed_round2,
    )
    if result.status == STATUS_HARNESS_ERROR:
        return Classification(mode=HARNESS_ERROR, **base)
    if result.status == STATUS_SERVICE_START_FAILED:
        return Classification(mode=SERVICE_START_FAILED, **base)

    round1 = result.round(1)
    output = round1.output if round1 else ""
    logs = "\n".join(result.logs.values())
    for rule in rules:
        if rule.matches(output, logs):
            return Classification(mode=rule.mode, **base)

    if round1 is not None and round1.timed_out:
        return Classification(mode=TIMEOUT, **base)
    if round1 is not None and not round1.services_alive:
        return Classification(mode=SERVICE_CRASH, **base)
    if round1 is not None and round1.failed:
        crashed = any(
            command.returncode not in (0, 1) and command.returncode is not None
            for command in round1.commands
        )
        mode = WORKLOAD_CRASH if crashed else WORKLOAD_FAILURE
        return Classification(mode=mode, **base)
    return Classification(mode=NO_FAILURE, **base)


def classify_all(
    results: list[ExperimentResult],
    rules: list[ClassificationRule] | None = None,
) -> list[Classification]:
    return [classify_experiment(result, rules) for result in results]


@dataclass
class Distribution:
    """Statistical distribution of failure modes, with drill-down."""

    classifications: list[Classification] = field(default_factory=list)

    @classmethod
    def build(cls, results: list[ExperimentResult],
              rules: list[ClassificationRule] | None = None) -> "Distribution":
        return cls(classifications=classify_all(results, rules))

    @property
    def total(self) -> int:
        return len(self.classifications)

    def counts(self, include_no_failure: bool = True) -> dict[str, int]:
        counts: dict[str, int] = {}
        for item in self.classifications:
            if not include_no_failure and not item.is_failure:
                continue
            counts[item.mode] = counts.get(item.mode, 0) + 1
        return dict(sorted(counts.items(), key=lambda kv: (-kv[1], kv[0])))

    def by_spec(self) -> dict[str, dict[str, int]]:
        """Drill-down: fault type -> mode -> count (paper §IV-C)."""
        table: dict[str, dict[str, int]] = {}
        for item in self.classifications:
            row = table.setdefault(item.spec_name, {})
            row[item.mode] = row.get(item.mode, 0) + 1
        return table

    def by_component(self) -> dict[str, dict[str, int]]:
        """Drill-down: injected component -> mode -> count."""
        table: dict[str, dict[str, int]] = {}
        for item in self.classifications:
            row = table.setdefault(item.component or "<unknown>", {})
            row[item.mode] = row.get(item.mode, 0) + 1
        return table

    def experiments_in_mode(self, mode: str) -> list[str]:
        return [item.experiment_id for item in self.classifications
                if item.mode == mode]

    def failure_count(self) -> int:
        return sum(1 for item in self.classifications if item.is_failure)
