"""Dependability metrics over experiment results (paper §IV-C, §IV-D).

* **service availability** — percentage of experiments in which the
  software was available in the second round (fault disabled), i.e. error
  states from round 1 were recovered;
* **failure logging** — percentage of experiments that both failed and
  logged at least one error message (telemetry quality);
* **failure propagation** — percentage of injected faults whose effects
  show up in more than one component's logs.
"""

from __future__ import annotations

import re
from dataclasses import dataclass, field

from repro.common.textutil import glob_match
from repro.orchestrator.experiment import ExperimentResult

#: Default patterns identifying an error log line.
DEFAULT_ERROR_PATTERNS = (
    r"\bERROR\b",
    r"\bCRITICAL\b",
    r"Traceback \(most recent call last\)",
    r"WORKLOAD FAILURE",
)


@dataclass
class AvailabilityReport:
    """Second-round availability across a campaign (§IV-C)."""

    total: int = 0
    available: int = 0
    unavailable_ids: list[str] = field(default_factory=list)

    @property
    def availability(self) -> float | None:
        """Availability ratio, or None with zero completed experiments.

        An empty campaign is *no evidence*, not 100% availability —
        report tables render the None case as ``n/a``.
        """
        return self.available / self.total if self.total else None

    @property
    def unavailability(self) -> float | None:
        availability = self.availability
        return None if availability is None else 1.0 - availability


def service_availability(results: list[ExperimentResult]) -> AvailabilityReport:
    """Fraction of experiments available again once the fault is disabled."""
    report = AvailabilityReport()
    for result in results:
        if not result.completed:
            continue
        report.total += 1
        if result.available_in_round2:
            report.available += 1
        else:
            report.unavailable_ids.append(result.experiment_id)
    return report


@dataclass
class LoggingReport:
    """How often failures came with error logs (§IV-D)."""

    failures: int = 0
    logged: int = 0
    silent_ids: list[str] = field(default_factory=list)

    @property
    def logging_ratio(self) -> float | None:
        """Logged-failure ratio, or None when no failure was analyzed."""
        return self.logged / self.failures if self.failures else None


def failure_logging(
    results: list[ExperimentResult],
    error_patterns: tuple[str, ...] = DEFAULT_ERROR_PATTERNS,
) -> LoggingReport:
    """Among failed experiments, how many logged at least one error."""
    compiled = [re.compile(pattern) for pattern in error_patterns]
    report = LoggingReport()
    for result in results:
        if not result.failed_round1 or not result.completed:
            continue
        report.failures += 1
        text = result.combined_output()
        if any(pattern.search(text) for pattern in compiled):
            report.logged += 1
        else:
            report.silent_ids.append(result.experiment_id)
    return report


@dataclass(frozen=True)
class ComponentSpec:
    """A sub-system for propagation analysis: its logs and error marker."""

    name: str
    #: Relative globs over collected log names (sandbox-relative paths).
    log_globs: tuple[str, ...]
    #: Regex marking an error line of this component.
    error_pattern: str = r"\bERROR\b|Traceback|FAILURE"


@dataclass
class PropagationReport:
    """How often faults impacted more than one component (§IV-D)."""

    analyzed: int = 0
    propagated: int = 0
    propagated_ids: list[str] = field(default_factory=list)

    @property
    def propagation_ratio(self) -> float | None:
        """Propagated-failure ratio, or None with nothing analyzed."""
        return self.propagated / self.analyzed if self.analyzed else None


def failure_propagation(
    results: list[ExperimentResult],
    components: list[ComponentSpec],
) -> PropagationReport:
    """Count failed experiments whose errors appear in >= 2 components.

    The workload output counts toward a component when its spec lists the
    pseudo-glob ``<output>``.
    """
    report = PropagationReport()
    for result in results:
        if not result.completed or not result.failed_round1:
            continue
        report.analyzed += 1
        affected = 0
        for component in components:
            compiled = re.compile(component.error_pattern)
            texts: list[str] = []
            for glob in component.log_globs:
                if glob == "<output>":
                    texts.extend(round_.output for round_ in result.rounds)
                    continue
                texts.extend(
                    content for name, content in result.logs.items()
                    if glob_match(glob, name)
                )
            if any(compiled.search(text) for text in texts):
                affected += 1
        if affected >= 2:
            report.propagated += 1
            report.propagated_ids.append(result.experiment_id)
    return report
