"""Cross-campaign result store over completed experiment streams.

The store does not copy result data: it indexes ``experiments.jsonl``
streams by their embedded campaign meta line (name, seed, faultload
digest, target fingerprint) in an append-only ``index.jsonl``
(last-record-wins per stream path, mirroring the stream reader
semantics).  Aggregation re-reads the indexed streams with constant
memory, classifying each result and folding the counts into one
:class:`~repro.stats.estimate.StreamingEstimator` — the
DecisionSupport/Reportbuilder layer DAVOS motivates.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import TYPE_CHECKING, Iterable

from repro.stats.estimate import StreamingEstimator

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.analysis.classify import ClassificationRule

__all__ = ["StatsStore"]


def _point_field(point: dict, key: str) -> str | None:
    value = point.get(key) if isinstance(point, dict) else None
    return value if isinstance(value, str) else None


class StatsStore:
    """Indexes completed experiment streams for cross-campaign queries."""

    def __init__(self, root: Path | str) -> None:
        self.root = Path(root)
        self.index_path = self.root / "index.jsonl"

    # -- registration -------------------------------------------------

    def add(self, stream_path: Path | str,
            summary: dict | None = None) -> dict:
        """Register a stream; returns its index entry.

        Re-registering the same path (e.g. a resumed campaign that
        appended more results) replaces the old entry.
        """
        from repro.orchestrator.stream import ExperimentStream

        path = Path(stream_path).resolve()
        stream = ExperimentStream(path)
        if not path.is_file():
            raise FileNotFoundError(f"no experiment stream at {path}")
        meta = stream.read_meta() or {}
        entry = {
            "stream": str(path),
            "campaign": meta.get("campaign"),
            "seed": meta.get("seed"),
            "faultload": meta.get("faultload"),
            "target": meta.get("target"),
            "experiments": len(stream.recorded_ids()),
        }
        if summary is not None:
            entry["stopped_early"] = bool(summary.get("stopped_early"))
        self.root.mkdir(parents=True, exist_ok=True)
        with self.index_path.open("a", encoding="utf-8") as handle:
            handle.write(json.dumps(entry, sort_keys=True) + "\n")
        return entry

    # -- queries ------------------------------------------------------

    def campaigns(self, campaign: str | None = None) -> list[dict]:
        """Indexed campaigns (last record per stream path wins)."""
        entries: dict[str, dict] = {}
        if self.index_path.is_file():
            with self.index_path.open("r", encoding="utf-8") as handle:
                for line in handle:
                    line = line.strip()
                    if not line:
                        continue
                    try:
                        data = json.loads(line)
                    except json.JSONDecodeError:
                        continue
                    if isinstance(data, dict) and "stream" in data:
                        entries[data["stream"]] = data
        rows = sorted(entries.values(),
                      key=lambda e: (str(e.get("campaign")), e["stream"]))
        if campaign is not None:
            rows = [row for row in rows if row.get("campaign") == campaign]
        return rows

    def aggregate(self, campaign: str | None = None,
                  spec: str | None = None, file: str | None = None,
                  component: str | None = None,
                  confidence: float = 0.95,
                  rules: Iterable["ClassificationRule"] | None = None,
                  ) -> dict:
        """Per-mode counts and Wilson estimates across stored campaigns.

        Experiments are keyed ``<stream>::<experiment_id>`` so the same
        plan sampled by two campaigns contributes one observation per
        campaign.  Filters match the injection point's ``spec_name`` /
        ``file`` / ``component`` fields exactly.
        """
        from repro.orchestrator.stream import ExperimentStream

        estimator = StreamingEstimator(confidence)
        selected = self.campaigns(campaign)
        missing: list[str] = []
        for entry in selected:
            path = Path(entry["stream"])
            if not path.is_file():
                missing.append(entry["stream"])
                continue
            for result in ExperimentStream(path):
                point = result.point or {}
                if spec is not None and \
                        _point_field(point, "spec_name") != spec:
                    continue
                if file is not None and \
                        _point_field(point, "file") != file:
                    continue
                if component is not None and \
                        _point_field(point, "component") != component:
                    continue
                estimator.observe_result(
                    result, rules=rules,
                    key=f"{entry['stream']}::{result.experiment_id}")
        report = estimator.summary()
        report["campaigns"] = [
            {"campaign": entry.get("campaign"), "stream": entry["stream"]}
            for entry in selected
        ]
        report["filters"] = {
            "campaign": campaign, "spec": spec,
            "file": file, "component": component,
        }
        if missing:
            report["missing_streams"] = missing
        return report
