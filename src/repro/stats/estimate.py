"""Streaming per-failure-mode proportion estimates with Wilson intervals.

The estimator is constant-memory: it keeps one counter per observed
failure mode plus a set of seen experiment ids for dedup (last-writes in
a stream never change the mode of an already-counted id — the first
record wins, matching at-most-once execution semantics).  It composes
with ``ExperimentStream``: feed it entries as they land and read the
current estimates between experiments.

The normal quantile is computed with Acklam's rational approximation —
accurate to ~1e-9, no scipy dependency.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import TYPE_CHECKING, Iterable

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.analysis.classify import ClassificationRule
    from repro.orchestrator.experiment import ExperimentResult

__all__ = [
    "ModeEstimate",
    "StreamingEstimator",
    "wilson_interval",
    "z_value",
]

# Coefficients for Acklam's inverse normal CDF approximation.
_A = (-3.969683028665376e+01, 2.209460984245205e+02,
      -2.759285104469687e+02, 1.383577518672690e+02,
      -3.066479806614716e+01, 2.506628277459239e+00)
_B = (-5.447609879822406e+01, 1.615858368580409e+02,
      -1.556989798598866e+02, 6.680131188771972e+01,
      -1.328068155288572e+01)
_C = (-7.784894002430293e-03, -3.223964580411365e-01,
      -2.400758277161838e+00, -2.549732539343734e+00,
      4.374664141464968e+00, 2.938163982698783e+00)
_D = (7.784695709041462e-03, 3.224671290700398e-01,
      2.445134137142996e+00, 3.754408661907416e+00)
_P_LOW = 0.02425


def _inverse_normal_cdf(p: float) -> float:
    """Acklam's approximation to the standard normal quantile."""
    if not 0.0 < p < 1.0:
        raise ValueError(f"quantile argument must be in (0, 1), got {p}")
    if p < _P_LOW:
        q = math.sqrt(-2.0 * math.log(p))
        return ((((((_C[0] * q + _C[1]) * q + _C[2]) * q + _C[3]) * q
                  + _C[4]) * q + _C[5])
                / ((((_D[0] * q + _D[1]) * q + _D[2]) * q + _D[3]) * q + 1.0))
    if p > 1.0 - _P_LOW:
        return -_inverse_normal_cdf(1.0 - p)
    q = p - 0.5
    r = q * q
    return (((((_A[0] * r + _A[1]) * r + _A[2]) * r + _A[3]) * r
             + _A[4]) * r + _A[5]) * q / \
        (((((_B[0] * r + _B[1]) * r + _B[2]) * r + _B[3]) * r
          + _B[4]) * r + 1.0)


def z_value(confidence: float) -> float:
    """Two-sided critical value for a given confidence level.

    ``z_value(0.95)`` ~= 1.96, ``z_value(0.99)`` ~= 2.576.
    """
    if not 0.0 < confidence < 1.0:
        raise ValueError(
            f"confidence must be in (0, 1), got {confidence}")
    return _inverse_normal_cdf(0.5 + confidence / 2.0)


def wilson_interval(count: int, n: int,
                    confidence: float = 0.95) -> tuple[float, float]:
    """Wilson score interval for ``count`` successes in ``n`` trials.

    Returns ``(low, high)``; ``(0.0, 1.0)`` when ``n == 0`` (total
    uncertainty, never a fake point estimate).
    """
    if count < 0 or n < 0 or count > n:
        raise ValueError(f"invalid proportion {count}/{n}")
    if n == 0:
        return (0.0, 1.0)
    z = z_value(confidence)
    p = count / n
    z2 = z * z
    denom = 1.0 + z2 / n
    center = (p + z2 / (2.0 * n)) / denom
    half = z * math.sqrt(p * (1.0 - p) / n + z2 / (4.0 * n * n)) / denom
    return (max(0.0, center - half), min(1.0, center + half))


@dataclass
class ModeEstimate:
    """Point estimate + Wilson interval for one failure mode."""

    mode: str
    count: int
    n: int
    proportion: float
    low: float
    high: float

    @property
    def margin(self) -> float:
        """Half-width of the interval — the convergence criterion."""
        return (self.high - self.low) / 2.0

    def to_dict(self) -> dict:
        return {
            "mode": self.mode,
            "count": self.count,
            "experiments": self.n,
            "proportion": round(self.proportion, 6),
            "low": round(self.low, 6),
            "high": round(self.high, 6),
            "margin": round(self.margin, 6),
        }


class StreamingEstimator:
    """Accumulates per-mode counts from classified experiment results.

    ``observe`` is idempotent per experiment id, so re-ingesting a
    stream (or overlapping shard streams) never double-counts.
    """

    def __init__(self, confidence: float = 0.95) -> None:
        z_value(confidence)  # validate eagerly
        self.confidence = confidence
        self._counts: dict[str, int] = {}
        self._seen: set[str] = set()

    @property
    def n(self) -> int:
        """Number of distinct experiments observed."""
        return len(self._seen)

    @property
    def modes(self) -> list[str]:
        """Observed failure modes, sorted."""
        return sorted(self._counts)

    def observe(self, experiment_id: str, mode: str) -> bool:
        """Record one classified experiment; False if already seen."""
        if experiment_id in self._seen:
            return False
        self._seen.add(experiment_id)
        self._counts[mode] = self._counts.get(mode, 0) + 1
        return True

    def observe_result(self, result: "ExperimentResult",
                       rules: Iterable["ClassificationRule"] | None = None,
                       key: str | None = None) -> bool:
        """Classify and record an ``ExperimentResult``.

        ``key`` overrides the dedup key (the cross-campaign store uses
        ``<campaign>::<experiment_id>`` so identical ids from different
        campaigns both count).
        """
        from repro.analysis.classify import classify_experiment

        classification = classify_experiment(
            result, rules=list(rules) if rules is not None else None)
        return self.observe(key or result.experiment_id,
                            classification.mode)

    def estimate(self, mode: str) -> ModeEstimate:
        """Current estimate for one mode (count 0 if never observed)."""
        count = self._counts.get(mode, 0)
        n = self.n
        low, high = wilson_interval(count, n, self.confidence)
        return ModeEstimate(mode=mode, count=count, n=n,
                            proportion=(count / n) if n else 0.0,
                            low=low, high=high)

    def estimates(self, modes: Iterable[str] | None = None,
                  ) -> dict[str, ModeEstimate]:
        """Estimates for the given modes (default: all observed)."""
        names = sorted(modes) if modes is not None else self.modes
        return {mode: self.estimate(mode) for mode in names}

    def summary(self, modes: Iterable[str] | None = None) -> dict:
        """JSON-ready snapshot: sample size, confidence, per-mode rows."""
        return {
            "experiments": self.n,
            "confidence": self.confidence,
            "modes": {mode: estimate.to_dict()
                      for mode, estimate in self.estimates(modes).items()},
        }
