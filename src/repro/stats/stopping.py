"""Sequential stopping rules evaluated through the cancel hook plumbing.

A :class:`StoppingMonitor` wraps a :class:`StoppingRule` and exposes a
zero-argument ``check()`` with cooperative-cancel semantics: the
campaign combines it with the user's cancel callback, so every backend
(thread, process, remote) already polls it between experiments and
drains in-flight work when it trips — no backend changes needed.

The monitor observes results by incrementally tailing the canonical
``experiments.jsonl`` plus any sibling ``experiments-<N>.jsonl`` shard
streams (the process backend writes those locally; the remote dispatcher
mirrors them to the same paths), deduplicating by experiment id.  Reads
are incremental byte tails, so polling stays cheap on large streams.
"""

from __future__ import annotations

from pathlib import Path
from typing import TYPE_CHECKING, Iterable, Protocol, runtime_checkable

from repro.stats.estimate import StreamingEstimator

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.analysis.classify import ClassificationRule
    from repro.stats.config import SamplingConfig

__all__ = [
    "AnyOf",
    "MarginBelow",
    "MaxExperiments",
    "MinSampleFloor",
    "StoppingMonitor",
    "StoppingRule",
    "rule_from_sampling",
]


@runtime_checkable
class StoppingRule(Protocol):
    """Decides whether enough evidence has accumulated to stop."""

    def should_stop(self, estimator: StreamingEstimator) -> str | None:
        """A human-readable reason to stop now, or None to continue."""


class MarginBelow:
    """Stop once every tracked mode's Wilson margin is below epsilon.

    ``modes=None`` tracks every mode observed so far (and requires at
    least one observation — zero evidence never satisfies a margin).
    """

    def __init__(self, margin: float,
                 modes: Iterable[str] | None = None) -> None:
        if not 0.0 < margin < 1.0:
            raise ValueError(f"margin must be in (0, 1), got {margin}")
        self.margin = margin
        self.modes = sorted(modes) if modes is not None else None

    def should_stop(self, estimator: StreamingEstimator) -> str | None:
        if estimator.n == 0:
            return None
        estimates = estimator.estimates(self.modes)
        if not estimates:
            return None
        worst = max(estimates.values(), key=lambda e: e.margin)
        if worst.margin < self.margin:
            return (f"all tracked margins below {self.margin:g} "
                    f"at n={estimator.n} "
                    f"(worst: {worst.mode} +/-{worst.margin:.4f})")
        return None


class MaxExperiments:
    """Stop once the sample size reaches a hard budget."""

    def __init__(self, limit: int) -> None:
        if limit < 1:
            raise ValueError(f"limit must be >= 1, got {limit}")
        self.limit = limit

    def should_stop(self, estimator: StreamingEstimator) -> str | None:
        if estimator.n >= self.limit:
            return f"experiment budget reached (n={estimator.n})"
        return None


class MinSampleFloor:
    """Gate another rule: never stop before ``floor`` observations."""

    def __init__(self, floor: int, rule: StoppingRule) -> None:
        if floor < 0:
            raise ValueError(f"floor must be >= 0, got {floor}")
        self.floor = floor
        self.rule = rule

    def should_stop(self, estimator: StreamingEstimator) -> str | None:
        if estimator.n < self.floor:
            return None
        return self.rule.should_stop(estimator)


class AnyOf:
    """First rule with an opinion wins."""

    def __init__(self, rules: Iterable[StoppingRule]) -> None:
        self.rules = list(rules)

    def should_stop(self, estimator: StreamingEstimator) -> str | None:
        for rule in self.rules:
            reason = rule.should_stop(estimator)
            if reason is not None:
                return reason
        return None


def rule_from_sampling(config: "SamplingConfig") -> StoppingRule | None:
    """The stopping rule a ``SamplingConfig`` implies, if any.

    Only the margin criterion becomes a runtime rule —
    ``max_experiments`` is enforced up front by truncating the plan to
    the seeded sample, which keeps completed-sample runs indistinguish-
    able from any other completed campaign.
    """
    if config.margin is None:
        return None
    rule: StoppingRule = MarginBelow(config.margin, modes=config.modes)
    if config.min_experiments > 0:
        rule = MinSampleFloor(config.min_experiments, rule)
    return rule


class StoppingMonitor:
    """Evaluates a stopping rule against a campaign's live streams.

    ``check()`` is the cancel-style hook: it ingests newly appended
    stream bytes, asks the rule, and latches True once tripped (backends
    may poll it concurrently; a latched stop never un-trips).
    """

    def __init__(self, stream_path: Path | str, rule: StoppingRule,
                 confidence: float = 0.95,
                 rules: Iterable["ClassificationRule"] | None = None,
                 ) -> None:
        self.stream_path = Path(stream_path)
        self.rule = rule
        self.classification_rules = list(rules) if rules is not None else None
        self.estimator = StreamingEstimator(confidence)
        self.stopped = False
        self.reason: str | None = None
        self._offsets: dict[Path, int] = {}

    def check(self) -> bool:
        """Cancel-hook: True once the rule has fired (latched)."""
        if self.stopped:
            return True
        self.ingest()
        reason = self.rule.should_stop(self.estimator)
        if reason is not None:
            self.stopped = True
            self.reason = reason
        return self.stopped

    def ingest(self) -> int:
        """Pull new records from the canonical + shard streams.

        Returns how many new experiments were observed.
        """
        from repro.orchestrator.backends import leftover_shard_streams

        paths = [self.stream_path]
        if self.stream_path.parent.is_dir():
            paths.extend(leftover_shard_streams(self.stream_path))
        observed = 0
        for path in paths:
            observed += self._ingest_file(path)
        return observed

    def _ingest_file(self, path: Path) -> int:
        from repro.orchestrator.experiment import ExperimentResult
        from repro.orchestrator.stream import parse_stream_lines

        try:
            size = path.stat().st_size
        except OSError:
            return 0
        offset = self._offsets.get(path, 0)
        if size <= offset:
            return 0
        try:
            with path.open("rb") as handle:
                handle.seek(offset)
                chunk = handle.read(size - offset)
        except OSError:
            return 0
        # Only consume complete lines; a partially-flushed record stays
        # buffered in the file until the trailing newline lands.
        cut = chunk.rfind(b"\n")
        if cut < 0:
            return 0
        self._offsets[path] = offset + cut + 1
        text = chunk[:cut + 1].decode("utf-8", errors="replace")
        observed = 0
        for entry in parse_stream_lines(text.splitlines()):
            if "meta" in entry:
                continue
            try:
                result = ExperimentResult.from_dict(entry)
            except (KeyError, TypeError, ValueError):
                continue
            if self.estimator.observe_result(
                    result, rules=self.classification_rules):
                observed += 1
        return observed

    def summary_block(self, final_ingest: bool = True) -> dict:
        """The ``stopped_early`` summary block for the campaign result."""
        if final_ingest:
            self.ingest()
        block = self.estimator.summary()
        block["reason"] = self.reason
        return block
