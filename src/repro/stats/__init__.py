"""Statistical campaign engine: sampling, estimation, stopping, store.

The pipeline mirrors DAVOS's ``InjectionStatistics`` / ZOFI's statistical
coverage analysis: draw a seeded, prefix-stable sample from the plan
(:mod:`repro.stats.sampler`), stream per-failure-mode proportion
estimates with Wilson score intervals as results land
(:mod:`repro.stats.estimate`), stop the campaign once the margins
converge (:mod:`repro.stats.stopping`), and index the finished streams
for cross-campaign aggregation (:mod:`repro.stats.store`).
"""

from repro.stats.config import SamplingConfig
from repro.stats.estimate import (
    ModeEstimate,
    StreamingEstimator,
    wilson_interval,
    z_value,
)
from repro.stats.sampler import (
    STRATIFY_CHOICES,
    monotone_sample,
    sample_order,
    sample_priority,
)
from repro.stats.stopping import (
    AnyOf,
    MarginBelow,
    MaxExperiments,
    MinSampleFloor,
    StoppingMonitor,
    StoppingRule,
    rule_from_sampling,
)
from repro.stats.store import StatsStore

__all__ = [
    "AnyOf",
    "MarginBelow",
    "MaxExperiments",
    "MinSampleFloor",
    "ModeEstimate",
    "STRATIFY_CHOICES",
    "SamplingConfig",
    "StatsStore",
    "StoppingMonitor",
    "StoppingRule",
    "StreamingEstimator",
    "monotone_sample",
    "rule_from_sampling",
    "sample_order",
    "sample_priority",
    "wilson_interval",
    "z_value",
]
