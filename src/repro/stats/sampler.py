"""Prefix-stable seeded sampling over experiment plans.

Each experiment gets a deterministic priority from
``sha256(f"{campaign_seed}::{experiment_id}")`` — the same material
:func:`repro.common.rng.experiment_seed` hashes, so a sample is a pure
function of (campaign seed, experiment ids): independent of
``PYTHONHASHSEED``, plan ordering, shard count, and process.

Sampling takes the lowest-priority prefix of a *fixed total order*, so
``sample_n(k)`` is always a subset of ``sample_n(k + m)``.  Growing a
sampled campaign toward exhaustive therefore rides the existing resume
machinery: the larger sample re-plans a superset and
``Plan.excluding(recorded_ids)`` executes only the delta.

With stratification the total order interleaves strata by within-stratum
rank (best of every stratum first, then the second-best of every
stratum, ...).  That order is still fixed — monotonicity holds — and it
guarantees every non-empty stratum is represented once ``count`` reaches
the number of strata, so rare files/components/specs aren't starved.
"""

from __future__ import annotations

import hashlib
from collections import defaultdict
from typing import TYPE_CHECKING

if TYPE_CHECKING:  # pragma: no cover - import cycle guard for typing only
    from repro.orchestrator.plan import Plan, PlannedExperiment

STRATIFY_CHOICES = ("file", "component", "spec")

__all__ = [
    "STRATIFY_CHOICES",
    "monotone_sample",
    "sample_order",
    "sample_priority",
    "stratum_key",
]


def sample_priority(campaign_seed: int, experiment_id: str) -> int:
    """Deterministic sampling priority for one experiment (lower = first).

    Uses the same ``{seed}::{id}`` sha256 material as ``experiment_seed``
    so the draw never depends on interpreter hash salting.
    """
    material = f"{campaign_seed}::{experiment_id}".encode("utf-8")
    digest = hashlib.sha256(material).digest()
    return int.from_bytes(digest[:8], "big")


def stratum_key(experiment: "PlannedExperiment", stratify_by: str) -> str:
    """The stratum an experiment belongs to under ``stratify_by``."""
    point = experiment.point
    if stratify_by == "file":
        return point.file
    if stratify_by == "component":
        return point.component
    if stratify_by == "spec":
        return point.spec_name
    raise ValueError(
        f"unknown stratification key {stratify_by!r}; "
        f"expected one of {', '.join(STRATIFY_CHOICES)}"
    )


def sample_order(plan: "Plan", campaign_seed: int,
                 stratify_by: str | None = None,
                 ) -> list["PlannedExperiment"]:
    """The fixed total order whose prefixes are the samples.

    Plain: ascending ``(priority, experiment_id)``.  Stratified:
    ascending ``(rank within stratum, priority, experiment_id)`` so the
    strata are interleaved round-robin by rank.
    """
    experiments = list(plan.experiments)
    if stratify_by is None:
        return sorted(
            experiments,
            key=lambda e: (sample_priority(campaign_seed, e.experiment_id),
                           e.experiment_id),
        )
    strata: dict[str, list] = defaultdict(list)
    for experiment in experiments:
        priority = sample_priority(campaign_seed, experiment.experiment_id)
        strata[stratum_key(experiment, stratify_by)].append(
            (priority, experiment.experiment_id, experiment))
    keyed = []
    for members in strata.values():
        members.sort(key=lambda item: item[:2])
        for rank, (priority, experiment_id, experiment) in enumerate(members):
            keyed.append(((rank, priority, experiment_id), experiment))
    keyed.sort(key=lambda item: item[0])
    return [experiment for _, experiment in keyed]


def monotone_sample(plan: "Plan", count: int, campaign_seed: int,
                    stratify_by: str | None = None) -> "Plan":
    """A prefix-stable sample of at most ``count`` experiments.

    Returns the chosen experiments in their original plan order (the
    sample decides *membership*, not execution order), clamping at the
    population like ``Plan.sample``.  For fixed inputs the draw is pure,
    and ``monotone_sample(plan, k)`` is a subset of
    ``monotone_sample(plan, k + m)``.
    """
    from repro.orchestrator.plan import Plan

    if count < 0:
        raise ValueError(f"sample count must be >= 0, got {count}")
    if count >= len(plan.experiments):
        return Plan(experiments=list(plan.experiments))
    order = sample_order(plan, campaign_seed, stratify_by=stratify_by)
    chosen = {experiment.experiment_id for experiment in order[:count]}
    return Plan(experiments=[e for e in plan.experiments
                             if e.experiment_id in chosen])
