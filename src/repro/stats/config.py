"""Sampling / early-stopping policy carried by ``CampaignConfig``.

``SamplingConfig`` is pure data with a lossless dict round-trip so it
survives the ``/v1`` wire format (see ``service.api``).  Semantics:

- ``max_experiments`` — cap the plan to a prefix-stable seeded sample
  of this size (monotone in n: raising it and resuming executes only
  the delta).
- ``margin`` + ``confidence`` — stop once every tracked failure mode's
  Wilson interval half-width falls below ``margin`` at ``confidence``.
- ``min_experiments`` — never stop on margins before this floor.
- ``stratify_by`` — ``"file" | "component" | "spec"`` stratified draw.
- ``modes`` — restrict the margin criterion to these failure modes
  (default: every mode observed so far).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.stats.estimate import z_value
from repro.stats.sampler import STRATIFY_CHOICES

__all__ = ["SamplingConfig"]


@dataclass
class SamplingConfig:
    """Statistical sampling and early-stopping policy for a campaign."""

    max_experiments: int | None = None
    min_experiments: int = 0
    margin: float | None = None
    confidence: float = 0.95
    stratify_by: str | None = None
    modes: list[str] | None = field(default=None)

    def __post_init__(self) -> None:
        if self.max_experiments is not None and self.max_experiments < 1:
            raise ValueError(
                f"sampling.max_experiments must be >= 1, "
                f"got {self.max_experiments}")
        if self.min_experiments < 0:
            raise ValueError(
                f"sampling.min_experiments must be >= 0, "
                f"got {self.min_experiments}")
        if (self.max_experiments is not None
                and self.min_experiments > self.max_experiments):
            raise ValueError(
                "sampling.min_experiments exceeds max_experiments "
                f"({self.min_experiments} > {self.max_experiments})")
        if self.margin is not None and not 0.0 < self.margin < 1.0:
            raise ValueError(
                f"sampling.margin must be in (0, 1), got {self.margin}")
        z_value(self.confidence)  # raises on bad confidence
        if (self.stratify_by is not None
                and self.stratify_by not in STRATIFY_CHOICES):
            raise ValueError(
                f"sampling.stratify_by must be one of "
                f"{', '.join(STRATIFY_CHOICES)}; got {self.stratify_by!r}")
        if self.modes is not None:
            self.modes = [str(mode) for mode in self.modes]

    def to_dict(self) -> dict:
        return {
            "max_experiments": self.max_experiments,
            "min_experiments": self.min_experiments,
            "margin": self.margin,
            "confidence": self.confidence,
            "stratify_by": self.stratify_by,
            "modes": list(self.modes) if self.modes is not None else None,
        }

    @classmethod
    def from_dict(cls, data: dict) -> "SamplingConfig":
        return cls(
            max_experiments=data.get("max_experiments"),
            min_experiments=data.get("min_experiments", 0),
            margin=data.get("margin"),
            confidence=data.get("confidence", 0.95),
            stratify_by=data.get("stratify_by"),
            modes=data.get("modes"),
        )
