"""Synthetic Python codebase generator (the OpenStack-scale stand-in).

§V-D evaluates scan performance on Nova/Neutron/Cinder — about 400 KLoC of
Python.  Offline we generate a *seeded, deterministic* codebase with a
realistic statement mix (calls, guarded blocks, assignments, try/except,
loops, classes) and the same API idioms the Fig. 1 patterns target
(``delete_*`` calls, ``if node:`` guards, ``utils.execute`` with flag
strings), so the same DSL patterns find work to do at scale.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from pathlib import Path

from repro.common.rng import SeededRandom

#: Name pools loosely modelled on the OpenStack modules of §V-D.
PACKAGES = ("nova", "neutron", "cinder")
RESOURCES = ("port", "subnet", "network", "volume", "instance", "router")
VERBS = ("create", "delete", "update", "attach", "detach", "resize")
UTILITIES = ("iptables", "dnsmasq", "e2fsck", "mount", "qemu-img")
FLAGS = ("-f", "-o", "--force", "-t ext4", "--json", "-v")
VARIABLES = ("node", "ctx", "request", "resource", "state", "result",
             "config", "client")


@dataclass
class SynthConfig:
    """Shape of the generated codebase."""

    files: int = 50
    functions_per_file: int = 8
    statements_per_function: int = 10
    classes_per_file: int = 1
    seed: int = 0


@dataclass
class SynthStats:
    """What was generated."""

    files: int = 0
    lines: int = 0
    functions: int = 0
    paths: list[Path] = field(default_factory=list)


class _ModuleWriter:
    """Generates one synthetic module deterministically."""

    def __init__(self, rng: SeededRandom, config: SynthConfig) -> None:
        self.rng = rng
        self.config = config
        self.lines: list[str] = []
        self.functions = 0

    def emit(self, line: str, indent: int = 0) -> None:
        self.lines.append("    " * indent + line)

    def render(self, module_name: str) -> str:
        self.emit(f'"""Auto-generated synthetic module {module_name}."""')
        self.emit("")
        self.emit("from synthlib import base, utils")
        self.emit("")
        for index in range(self.config.classes_per_file):
            self._emit_class(index)
        remaining = (self.config.functions_per_file
                     - self.config.classes_per_file * 2)
        for index in range(max(1, remaining)):
            self._emit_function(f"task_{index}", indent=0)
        return "\n".join(self.lines) + "\n"

    def _emit_class(self, index: int) -> None:
        resource = self.rng.choice(RESOURCES)
        self.emit(f"class {resource.capitalize()}Manager{index}:")
        self._emit_function("apply", indent=1, method=True)
        self._emit_function("rollback", indent=1, method=True)
        self.emit("")

    def _emit_function(self, name: str, indent: int,
                       method: bool = False) -> None:
        self.functions += 1
        args = "self, ctx" if method else "ctx"
        self.emit(f"def {name}({args}):", indent)
        body_indent = indent + 1
        statements = self.rng.randint(
            max(3, self.config.statements_per_function - 3),
            self.config.statements_per_function + 3,
        )
        self.emit("log = base.get_logger()", body_indent)
        for _ in range(statements):
            self._emit_statement(body_indent)
        self.emit(f"return {self.rng.choice(VARIABLES)}", body_indent)
        self.emit("")

    def _emit_statement(self, indent: int) -> None:
        roll = self.rng.random()
        resource = self.rng.choice(RESOURCES)
        verb = self.rng.choice(VERBS)
        variable = self.rng.choice(VARIABLES)
        if roll < 0.25:
            # Plain API call (MFC / THROW targets).
            self.emit(f"base.client.{verb}_{resource}(ctx, {variable})",
                      indent)
        elif roll < 0.40:
            # Assignment from a call (NONE_RETURN / MVAE targets).
            self.emit(
                f"{variable} = base.client.{verb}_{resource}(ctx)", indent
            )
        elif roll < 0.52:
            # Guarded block with continue-style skip (MIFS target shape).
            self.emit(f"if {self.rng.choice(VARIABLES)}:", indent)
            self.emit(f"log.debug('checked {resource}')", indent + 1)
            self.emit(f"{variable} = base.refresh({variable})", indent + 1)
        elif roll < 0.62:
            # External utility invocation (WPF target).
            utility = self.rng.choice(UTILITIES)
            flag = self.rng.choice(FLAGS)
            self.emit(
                f"utils.execute('{utility}', '{flag}', {variable})", indent
            )
        elif roll < 0.72:
            # Two-clause condition (MLAC/MLOC targets).
            joiner = self.rng.choice(("and", "or"))
            self.emit(
                f"if {variable} {joiner} ctx:", indent
            )
            self.emit(f"base.client.{verb}_{resource}(ctx)", indent + 1)
        elif roll < 0.82:
            # try/except with handler (exception-injection target).
            self.emit("try:", indent)
            self.emit(
                f"{variable} = utils.probe('{resource}')", indent + 1
            )
            self.emit("except base.ServiceError:", indent)
            self.emit(f"log.error('probe failed: {resource}')", indent + 1)
        elif roll < 0.92:
            # Literal assignment (MVIV/MVAV/WVAV targets).
            value = self.rng.choice(
                (str(self.rng.randint(0, 300)), f"'{resource}-id'")
            )
            self.emit(f"{variable} = {value}", indent)
        else:
            # Loop over a collection.
            self.emit(f"for node in base.list_{resource}s(ctx):", indent)
            self.emit("if node:", indent + 1)
            self.emit("base.sync(node)", indent + 2)
            self.emit("continue", indent + 2)


def generate_module(config: SynthConfig, package: str,
                    index: int) -> tuple[str, str]:
    """(relative path, source) for one synthetic module."""
    rng = SeededRandom(config.seed).derive(f"{package}/mod_{index}")
    writer = _ModuleWriter(rng, config)
    name = f"{package}/mod_{index:04d}.py"
    return name, writer.render(name)


def generate_codebase(dest: str | Path, config: SynthConfig) -> SynthStats:
    """Write the synthetic codebase under ``dest`` and return stats."""
    dest = Path(dest)
    stats = SynthStats()
    for index in range(config.files):
        package = PACKAGES[index % len(PACKAGES)]
        rel, source = generate_module(config, package, index)
        path = dest / rel
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text(source, encoding="utf-8")
        init = path.parent / "__init__.py"
        if not init.exists():
            init.write_text("")
        stats.files += 1
        stats.lines += source.count("\n")
        stats.paths.append(path)
    return stats


def scan_pattern_apis() -> list[str]:
    """API name globs for building the ~120-pattern faultload of §V-D."""
    apis = [f"{verb}_{resource}" for verb in VERBS for resource in RESOURCES]
    apis.sort()
    return apis[:20]
