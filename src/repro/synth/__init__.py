"""Synthetic scan-target generation (the §V-D OpenStack stand-in)."""

from repro.synth.codegen import (
    SynthConfig,
    SynthStats,
    generate_codebase,
    generate_module,
    scan_pattern_apis,
)

__all__ = [
    "SynthConfig",
    "SynthStats",
    "generate_codebase",
    "generate_module",
    "scan_pattern_apis",
]
