"""python-etcd–style client for the etcd simulator: the injection target.

This module plays the role of *Python-etcd 0.4.5* in the paper's case study
(§V): a client library whose methods (``set``, ``get``, ``test_and_set``,
``mkdir``, ``delete``, ...) talk to an etcd server over HTTP.  It is written
against the stdlib ``urllib`` and ``os`` modules — exactly the external
APIs the first fault injection campaign targets — and its input handling
deliberately mirrors python-etcd's (e.g. ``key.startswith('/')`` without a
None check, which yields the campaign-B failure
``AttributeError: 'NoneType' object has no attribute 'startswith'``).

Self-contained (stdlib only, relative imports): copied into sandboxes as
the ``pyetcd`` target package and mutated there.
"""

from __future__ import annotations

import json
import os
import socket
import urllib.error
import urllib.parse
import urllib.request

from .errors import (
    EtcdConnectionFailed,
    EtcdException,
    EtcdWatchTimedOut,
    exception_for,
)

DEFAULT_HOST = "127.0.0.1"
DEFAULT_PORT = 2379
DEFAULT_TIMEOUT = 10.0


class EtcdResult:
    """Result of one etcd operation, with python-etcd's attribute surface."""

    def __init__(self, payload: dict) -> None:
        self.action = payload.get("action")
        node = payload.get("node") or {}
        prev = payload.get("prevNode")
        self.key = node.get("key")
        self.value = node.get("value")
        self.dir = bool(node.get("dir", False))
        self.ttl = node.get("ttl")
        self.created_index = node.get("createdIndex")
        self.modified_index = node.get("modifiedIndex")
        self.prev_value = None if prev is None else prev.get("value")
        self._children = node.get("nodes") or []

    @property
    def children(self) -> list["EtcdResult"]:
        """Child nodes of a directory result (non-recursive view)."""
        return [EtcdResult({"action": self.action, "node": child})
                for child in self._children]

    @property
    def leaves(self) -> list["EtcdResult"]:
        """All value leaves below this node (requires recursive get)."""
        if not self.dir:
            return [self]
        result = []
        for child in self.children:
            result.extend(child.leaves)
        return result

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (f"EtcdResult(action={self.action!r}, key={self.key!r}, "
                f"value={self.value!r}, dir={self.dir})")


class Client:
    """Client for the etcd v2 API, shaped after python-etcd's ``Client``."""

    def __init__(
        self,
        host: str | None = None,
        port: int | None = None,
        protocol: str = "http",
        read_timeout: float | None = None,
    ) -> None:
        env_host = os.environ.get("ETCDSIM_HOST")
        env_port = os.environ.get("ETCDSIM_PORT")
        self.host = host if host is not None else (env_host or DEFAULT_HOST)
        if port is not None:
            self.port = int(port)
        else:
            self.port = int(env_port) if env_port else DEFAULT_PORT
        self.protocol = protocol
        if read_timeout is not None:
            self.read_timeout = float(read_timeout)
        else:
            env_timeout = os.environ.get("ETCDSIM_TIMEOUT")
            self.read_timeout = float(env_timeout) if env_timeout else DEFAULT_TIMEOUT

    # -- public API (the campaign-B injection targets) -------------------------

    def set(self, key: str, value: str, ttl: int | None = None) -> EtcdResult:
        """Write ``value`` at ``key``, optionally with a TTL in seconds."""
        path = self._key_endpoint(key)
        fields = self._write_fields(value, ttl)
        payload = self._execute("PUT", path, fields)
        result = EtcdResult(payload)
        return result

    def get(self, key: str, recursive: bool = False,
            sorted: bool = False) -> EtcdResult:  # noqa: A002
        """Read ``key`` (a value or a directory listing)."""
        path = self._key_endpoint(key)
        query = self._read_query(recursive, sorted)
        payload = self._execute("GET", path + query, None)
        result = EtcdResult(payload)
        return result

    def delete(self, key: str, recursive: bool = False,
               dir: bool = False) -> EtcdResult:  # noqa: A002
        """Delete ``key``; directories require ``dir`` or ``recursive``."""
        path = self._key_endpoint(key)
        flags = []
        if recursive:
            flags.append("recursive=true")
        if dir:
            flags.append("dir=true")
        query = "?" + "&".join(flags) if flags else ""
        payload = self._execute("DELETE", path + query, None)
        result = EtcdResult(payload)
        return result

    def test_and_set(self, key: str, value: str, prev_value: str,
                     ttl: int | None = None) -> EtcdResult:
        """Atomic compare-and-swap: write only if ``prev_value`` matches."""
        path = self._key_endpoint(key)
        fields = self._write_fields(value, ttl)
        fields["prevValue"] = prev_value
        payload = self._execute("PUT", path, fields)
        result = EtcdResult(payload)
        return result

    def update(self, key: str, value: str, ttl: int | None = None) -> EtcdResult:
        """Write ``key`` only if it already exists."""
        path = self._key_endpoint(key)
        fields = self._write_fields(value, ttl)
        fields["prevExist"] = "true"
        payload = self._execute("PUT", path, fields)
        result = EtcdResult(payload)
        return result

    def create(self, key: str, value: str, ttl: int | None = None) -> EtcdResult:
        """Write ``key`` only if it does not exist yet."""
        path = self._key_endpoint(key)
        fields = self._write_fields(value, ttl)
        fields["prevExist"] = "false"
        payload = self._execute("PUT", path, fields)
        result = EtcdResult(payload)
        return result

    def mkdir(self, key: str, ttl: int | None = None) -> EtcdResult:
        """Create a directory at ``key``."""
        path = self._key_endpoint(key)
        fields = {"dir": "true"}
        if ttl is not None:
            fields["ttl"] = str(ttl)
        payload = self._execute("PUT", path, fields)
        result = EtcdResult(payload)
        return result

    def ls(self, key: str, recursive: bool = False) -> list[str]:
        """Keys of the children of directory ``key``."""
        listing = self.get(key, recursive=recursive, sorted=True)
        names = [child.key for child in listing.children]
        return names

    def append(self, key: str, value: str, ttl: int | None = None) -> EtcdResult:
        """Atomic in-order insert under directory ``key`` (etcd POST)."""
        path = self._key_endpoint(key)
        fields = self._write_fields(value, ttl)
        payload = self._execute("POST", path, fields)
        result = EtcdResult(payload)
        return result

    def watch(self, key: str, index: int | None = None,
              timeout: float | None = None,
              recursive: bool = False) -> EtcdResult:
        """Block until ``key`` changes (etcd ``wait=true``)."""
        path = self._key_endpoint(key)
        flags = ["wait=true"]
        if index is not None:
            flags.append("waitIndex=%d" % index)
        if recursive:
            flags.append("recursive=true")
        if timeout is not None:
            flags.append("waitTimeout=%s" % timeout)
        query = "?" + "&".join(flags)
        payload = self._execute("GET", path + query, None,
                                timeout=(timeout or self.read_timeout) + 2.0)
        result = EtcdResult(payload)
        return result

    def version(self) -> str:
        """The server's version string."""
        payload = self._execute("GET", "/version", None)
        version = payload.get("etcdserver", "unknown")
        return version

    def stats(self) -> dict:
        """Server-side store statistics."""
        payload = self._execute("GET", "/v2/stats/store", None)
        return payload

    # -- request plumbing (the campaign-A injection targets) --------------------

    def _base_url(self) -> str:
        authority = "%s:%d" % (self.host, self.port)
        url = "%s://%s" % (self.protocol, authority)
        return url

    def _key_endpoint(self, key: str) -> str:
        if not key.startswith("/"):
            key = "/" + key
        quoted = urllib.parse.quote(key)
        endpoint = "/v2/keys" + quoted
        return endpoint

    def _write_fields(self, value: str, ttl: int | None) -> dict:
        fields = {"value": value}
        if ttl is not None:
            fields["ttl"] = str(ttl)
        return fields

    def _read_query(self, recursive: bool, sorted_: bool) -> str:
        flags = []
        if recursive:
            flags.append("recursive=true")
        if sorted_:
            flags.append("sorted=true")
        if not flags:
            return ""
        query = "?" + "&".join(flags)
        return query

    def _execute(self, method: str, path: str, fields: dict | None,
                 timeout: float | None = None) -> dict:
        url = self._base_url() + path
        data = None
        if fields is not None:
            encoded = urllib.parse.urlencode(fields)
            data = encoded.encode("utf-8")
        request = urllib.request.Request(url, data=data, method=method)
        request.add_header("Content-Type",
                           "application/x-www-form-urlencoded")
        effective_timeout = timeout if timeout is not None else self.read_timeout
        try:
            response = urllib.request.urlopen(request,
                                              timeout=effective_timeout)
        except urllib.error.HTTPError as error:
            raise self._error_from_response(error) from None
        except urllib.error.URLError as error:
            raise EtcdConnectionFailed(
                "Connection to etcd failed: %s" % error.reason
            ) from None
        except socket.timeout:
            raise EtcdConnectionFailed("Connection to etcd timed out") from None
        body = response.read()
        payload = self._decode_payload(body)
        return payload

    def _decode_payload(self, body: bytes) -> dict:
        try:
            payload = json.loads(body.decode("utf-8"))
        except (UnicodeDecodeError, json.JSONDecodeError):
            raise EtcdException(
                "Bad response: not JSON: %r" % body[:80]
            ) from None
        if not isinstance(payload, dict):
            raise EtcdException("Bad response: unexpected payload type")
        return payload

    def _error_from_response(self, error: "urllib.error.HTTPError") -> EtcdException:
        try:
            body = error.read()
            payload = json.loads(body.decode("utf-8"))
        except Exception:
            payload = {}
        code = payload.get("errorCode")
        if code == 401:
            return EtcdWatchTimedOut("watch timed out")
        if code is not None:
            return exception_for(code, payload.get("message", "etcd error"),
                                 payload.get("cause", ""))
        return EtcdException("Bad response: %d %s" % (error.code, error.reason))
