"""Case-study workload: exercise the client against a live server (§V).

The paper's workload "deploys the etcd server, and it uploads and queries
several key-value pairs of a different kind (e.g., with directories,
sub-keys, TTL, etc.) that we derived from Python-etcd's integration tests".
This module is that driver: a linear scenario of directory creation,
nested writes, compare-and-swap, TTL expiry, in-order appends, recursive
reads and deletes, each followed by consistency assertions (the paper's
"test assertions on the outputs of the workload").

The final *audit* asserts that the datastore contains exactly the expected
tree — stray keys left behind by a corrupted round persist in the server
and make the *next* round fail, which is how service (un)availability in
the second round becomes observable (§IV-B).

Self-contained (stdlib only, relative imports): copied into sandboxes as
part of the ``pyetcd`` target package.
"""

from __future__ import annotations

import argparse
import os
import sys
import time

from .client import Client
from .errors import (
    EtcdAlreadyExist,
    EtcdCompareFailed,
    EtcdException,
    EtcdKeyNotFound,
)

#: TTL used for the expiring key; the workload waits it out.
SESSION_TTL = 1

#: Service-level objective for the basic-operation latency check: 30
#: local operations normally take well under a second; resource hogs
#: (paper §V-C) starve the client and blow this budget.
LATENCY_SLO_SECONDS = 10.0


class WorkloadError(AssertionError):
    """A consistency check on workload output failed."""


def check(condition: bool, message: str) -> None:
    if not condition:
        raise WorkloadError(message)


def run_workload(client: Client, log=None) -> int:
    """Run the full scenario once; returns the number of steps executed.

    Raises :class:`WorkloadError` on failed assertions and lets client
    exceptions (EtcdException and unexpected errors) propagate: the
    caller classifies them.
    """
    steps = 0

    def step(label: str) -> None:
        nonlocal steps
        steps += 1
        if log is not None:
            log(f"step {steps}: {label}")

    step("server version")
    version = client.version()
    check(isinstance(version, str) and version, "version missing")

    step("recover: remove any leftover /app tree")
    try:
        client.delete("/app", recursive=True)
    except EtcdKeyNotFound:
        pass

    step("mkdir /app/services")
    client.mkdir("/app")
    client.mkdir("/app/services")
    listing = client.get("/app")
    check(listing.dir, "/app is not a directory")

    step("set and get a config value")
    client.set("/app/config/name", "demo")
    fetched = client.get("/app/config/name")
    check(fetched.value == "demo",
          f"read back {fetched.value!r}, expected 'demo'")
    # Keys without a leading slash are normalized by the client.
    client.set("app/config/region", "eu-1")
    check(client.get("/app/config/region").value == "eu-1",
          "unslashed key was not normalized")

    step("nested sub-keys")
    client.set("/app/services/db/host", "db.local")
    client.set("/app/services/db/port", "5432")
    client.set("/app/services/cache/host", "cache.local")
    hosts = client.get("/app/services", recursive=True)
    leaves = {leaf.key: leaf.value for leaf in hosts.leaves}
    check(leaves.get("/app/services/db/host") == "db.local",
          f"db host wrong: {leaves}")
    check(len(leaves) == 3, f"expected 3 service leaves, got {len(leaves)}")

    step("sorted directory listing")
    names = client.ls("/app/services")
    check(names == ["/app/services/cache", "/app/services/db"],
          f"unexpected listing {names}")

    step("update existing key")
    client.update("/app/config/name", "demo-2")
    check(client.get("/app/config/name").value == "demo-2",
          "update did not take effect")

    step("create semantics")
    client.create("/app/config/version", "1")
    try:
        client.create("/app/config/version", "1-dup")
    except EtcdAlreadyExist:
        pass
    else:
        raise WorkloadError("duplicate create unexpectedly succeeded")

    step("test_and_set success and failure")
    client.test_and_set("/app/config/version", "2", prev_value="1")
    check(client.get("/app/config/version").value == "2",
          "test_and_set did not swap")
    try:
        client.test_and_set("/app/config/version", "3", prev_value="999")
    except EtcdCompareFailed:
        pass
    else:
        raise WorkloadError("test_and_set with wrong prev unexpectedly "
                            "succeeded")

    step("TTL key expires")
    client.set("/app/session", "token-123", ttl=SESSION_TTL)
    check(client.get("/app/session").value == "token-123",
          "TTL key missing right after set")
    time.sleep(SESSION_TTL + 0.4)
    try:
        client.get("/app/session")
    except EtcdKeyNotFound:
        pass
    else:
        raise WorkloadError("TTL key survived past its TTL")

    step("in-order append")
    first = client.append("/app/queue", "job-a")
    client.append("/app/queue", "job-b")
    queue = client.get("/app/queue", sorted=True)
    values = [child.key for child in queue.children]
    check(len(values) == 2 and values == sorted(values),
          f"queue out of order: {values}")

    step("watch sees a recorded write")
    event = client.watch("/app/queue", index=first.modified_index,
                         recursive=True, timeout=3.0)
    check(event.action in ("create", "set"),
          f"unexpected watch action {event.action!r}")

    step("empty directory lifecycle and server stats")
    client.mkdir("/app/tmp")
    client.delete("/app/tmp", dir=True)
    try:
        client.get("/app/tmp")
    except EtcdKeyNotFound:
        pass
    else:
        raise WorkloadError("deleted empty directory still present")
    stats = client.stats()
    check(isinstance(stats.get("etcdIndex"), int),
          f"stats missing etcdIndex: {stats}")

    step("latency SLO on basic operations")
    started = time.monotonic()
    for index in range(15):
        client.set(f"/app/bench/item-{index}", str(index))
        client.get(f"/app/bench/item-{index}")
    elapsed = time.monotonic() - started
    check(elapsed < LATENCY_SLO_SECONDS,
          f"latency SLO violated: {elapsed:.1f}s for 30 operations "
          f"(limit {LATENCY_SLO_SECONDS}s)")

    step("recursive delete of a subtree")
    client.delete("/app/services/db", recursive=True)
    try:
        client.get("/app/services/db")
    except EtcdKeyNotFound:
        pass
    else:
        raise WorkloadError("deleted subtree still present")

    step("audit: root contains exactly /app")
    root = client.ls("/")
    check(root == ["/app"], f"unexpected root entries {root} (stray state)")

    step("teardown: remove /app")
    client.delete("/app", recursive=True)
    remaining = client.ls("/")
    check(remaining == [], f"teardown left {remaining}")

    return steps


def resolve_port(args) -> int:
    """Port from --port, --port-file (waiting for it), or environment."""
    if args.port:
        return args.port
    if args.port_file:
        deadline = time.time() + args.port_wait
        while time.time() < deadline:
            if os.path.exists(args.port_file):
                content = open(args.port_file).read().strip()
                if content:
                    return int(content)
            time.sleep(0.05)
        raise SystemExit(f"port file {args.port_file!r} never appeared")
    return int(os.environ.get("ETCDSIM_PORT", "2379"))


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description="etcdsim case-study workload")
    parser.add_argument("--host", default=os.environ.get("ETCDSIM_HOST",
                                                         "127.0.0.1"))
    parser.add_argument("--port", type=int, default=0)
    parser.add_argument("--port-file", default=None)
    parser.add_argument("--port-wait", type=float, default=10.0,
                        help="seconds to wait for the port file")
    parser.add_argument("--quiet", action="store_true")
    args = parser.parse_args(argv)

    port = resolve_port(args)
    client = Client(host=args.host, port=port)
    log = None if args.quiet else lambda msg: print(f"workload: {msg}",
                                                    flush=True)
    try:
        steps = run_workload(client, log=log)
    except WorkloadError as failure:
        print(f"WORKLOAD FAILURE: assertion: {failure}", file=sys.stderr)
        return 1
    except EtcdException as failure:
        name = type(failure).__name__
        print(f"WORKLOAD FAILURE: {name}: {failure}", file=sys.stderr)
        return 1
    except Exception as failure:  # noqa: BLE001 - report and fail
        name = type(failure).__name__
        print(f"WORKLOAD FAILURE: unhandled {name}: {failure}",
              file=sys.stderr)
        return 2
    print(f"WORKLOAD SUCCESS: {steps} steps completed", flush=True)
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
