"""HTTP server exposing the store over the etcd v2 wire protocol.

A threaded ``http.server`` speaking the subset of the etcd v2 API that
python-etcd exercises: ``/v2/keys`` (GET/PUT/POST/DELETE with recursive,
sorted, wait, TTL, prevValue/prevIndex/prevExist), ``/v2/stats/store`` and
``/version``.  Designed to be launched as the *service under test* inside
an experiment sandbox: with ``--port 0`` it binds an ephemeral port and
writes it to ``--port-file`` so the workload can find it.

Self-contained (stdlib only, relative imports): copied into sandboxes as
part of the ``pyetcd`` target package.
"""

from __future__ import annotations

import argparse
import json
import signal
import sys
import threading
import urllib.parse
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer

from .errors import EC_INVALID_FIELD, EC_WATCH_TIMED_OUT, EtcdError
from .store import EtcdStore

SERVER_VERSION = {"etcdserver": "2.3.8-sim", "etcdcluster": "2.3.0-sim"}
DEFAULT_WAIT_TIMEOUT = 10.0


def _parse_bool(raw: str | None, name: str) -> bool | None:
    if raw is None:
        return None
    lowered = raw.lower()
    if lowered in ("true", "1", "yes"):
        return True
    if lowered in ("false", "0", "no"):
        return False
    raise EtcdError(EC_INVALID_FIELD, "Invalid field",
                    f"{name}={raw!r} is not a boolean")


class EtcdRequestHandler(BaseHTTPRequestHandler):
    """One HTTP request against the shared :class:`EtcdStore`."""

    server_version = "etcdsim"
    protocol_version = "HTTP/1.1"

    # Populated by EtcdServer.
    store: EtcdStore = None  # type: ignore[assignment]
    quiet: bool = True

    def log_message(self, format: str, *args) -> None:  # noqa: A002
        if not self.quiet:
            sys.stderr.write("etcdsim: " + format % args + "\n")

    # -- verb dispatch -------------------------------------------------------

    def do_GET(self) -> None:  # noqa: N802
        parsed = urllib.parse.urlparse(self.path)
        if parsed.path == "/version":
            self._send(200, SERVER_VERSION)
            return
        if parsed.path == "/v2/stats/store":
            self._send(200, self.store.stats())
            return
        self._keys_op("GET", parsed)

    def do_PUT(self) -> None:  # noqa: N802
        self._keys_op("PUT", urllib.parse.urlparse(self.path))

    def do_POST(self) -> None:  # noqa: N802
        self._keys_op("POST", urllib.parse.urlparse(self.path))

    def do_DELETE(self) -> None:  # noqa: N802
        self._keys_op("DELETE", urllib.parse.urlparse(self.path))

    # -- /v2/keys ---------------------------------------------------------------

    def _keys_op(self, method: str, parsed) -> None:
        if not parsed.path.startswith("/v2/keys"):
            self._send(404, {"message": "not found", "path": parsed.path})
            return
        key = urllib.parse.unquote(parsed.path[len("/v2/keys"):]) or "/"
        query = {
            name: values[-1]
            for name, values in urllib.parse.parse_qs(parsed.query).items()
        }
        form = self._read_form()
        params = {**query, **form}
        try:
            if method == "GET":
                event = self._handle_get(key, params)
            elif method == "PUT":
                event = self._handle_put(key, params)
            elif method == "POST":
                event = self._handle_post(key, params)
            else:
                event = self._handle_delete(key, params)
        except EtcdError as error:
            self._send(error.http_status, error.to_wire(self.store.index))
            return
        created = method in ("PUT", "POST") and event.action == "create"
        self._send(201 if created else 200, event.to_wire())

    def _handle_get(self, key: str, params: dict):
        wait = _parse_bool(params.get("wait"), "wait")
        recursive = bool(_parse_bool(params.get("recursive"), "recursive"))
        sorted_ = bool(_parse_bool(params.get("sorted"), "sorted"))
        if wait:
            wait_index = None
            if "waitIndex" in params:
                try:
                    wait_index = int(params["waitIndex"])
                except ValueError:
                    raise EtcdError(
                        EC_INVALID_FIELD, "Invalid field",
                        f"waitIndex={params['waitIndex']!r}",
                    ) from None
            event = self.store.wait(
                key, wait_index=wait_index, recursive=recursive,
                timeout=float(params.get("waitTimeout",
                                         DEFAULT_WAIT_TIMEOUT)),
            )
            if event is None:
                raise EtcdError(EC_WATCH_TIMED_OUT, "watch timed out", key)
            return event
        return self.store.get(key, recursive=recursive, sorted_=sorted_)

    def _handle_put(self, key: str, params: dict):
        ttl = params.get("ttl")
        if ttl == "":
            ttl = None
        return self.store.set(
            key,
            value=params.get("value"),
            ttl=ttl,
            dir=bool(_parse_bool(params.get("dir"), "dir")),
            prev_exist=_parse_bool(params.get("prevExist"), "prevExist"),
            prev_value=params.get("prevValue"),
            prev_index=(int(params["prevIndex"])
                        if "prevIndex" in params else None),
        )

    def _handle_post(self, key: str, params: dict):
        # Atomic in-order creation: POST /v2/keys/dir appends a child whose
        # name is the creation index (etcd's in-order keys).
        ordered = f"{key.rstrip('/')}/{self.store.index + 1:020d}"
        ttl = params.get("ttl") or None
        return self.store.set(ordered, value=params.get("value"), ttl=ttl,
                              prev_exist=False)

    def _handle_delete(self, key: str, params: dict):
        return self.store.delete(
            key,
            recursive=bool(_parse_bool(params.get("recursive"), "recursive")),
            dir=bool(_parse_bool(params.get("dir"), "dir")),
        )

    # -- plumbing ----------------------------------------------------------------

    def _read_form(self) -> dict:
        length = int(self.headers.get("Content-Length") or 0)
        if length <= 0:
            return {}
        body = self.rfile.read(length).decode("utf-8", errors="replace")
        return {
            name: values[-1]
            for name, values in urllib.parse.parse_qs(body).items()
        }

    def _send(self, status: int, payload: dict) -> None:
        body = json.dumps(payload).encode("utf-8")
        self.send_response(status)
        self.send_header("Content-Type", "application/json")
        self.send_header("Content-Length", str(len(body)))
        self.send_header("X-Etcd-Index", str(self.store.index))
        self.end_headers()
        self.wfile.write(body)


class EtcdServer:
    """The etcd simulator: a store plus its threaded HTTP frontend."""

    def __init__(self, host: str = "127.0.0.1", port: int = 0,
                 quiet: bool = True) -> None:
        self.store = EtcdStore()
        handler = type(
            "BoundHandler", (EtcdRequestHandler,),
            {"store": self.store, "quiet": quiet},
        )
        self.httpd = ThreadingHTTPServer((host, port), handler)
        self.httpd.daemon_threads = True
        self._thread: threading.Thread | None = None

    @property
    def host(self) -> str:
        return self.httpd.server_address[0]

    @property
    def port(self) -> int:
        return self.httpd.server_address[1]

    def start(self) -> None:
        """Serve in a background thread (for tests and examples)."""
        self._thread = threading.Thread(
            target=self.httpd.serve_forever, kwargs={"poll_interval": 0.05},
            daemon=True,
        )
        self._thread.start()

    def stop(self) -> None:
        self.httpd.shutdown()
        self.httpd.server_close()
        if self._thread is not None:
            self._thread.join(timeout=5)
            self._thread = None

    def serve_forever(self) -> None:
        self.httpd.serve_forever(poll_interval=0.1)

    def __enter__(self) -> "EtcdServer":
        self.start()
        return self

    def __exit__(self, *exc_info) -> None:
        self.stop()


def main(argv: list[str] | None = None) -> int:
    """Command-line entry point used as the sandbox service command."""
    parser = argparse.ArgumentParser(description="etcd v2 simulator")
    parser.add_argument("--host", default="127.0.0.1")
    parser.add_argument("--port", type=int, default=0,
                        help="0 binds an ephemeral port")
    parser.add_argument("--port-file", default=None,
                        help="write the bound port to this file")
    parser.add_argument("--verbose", action="store_true")
    args = parser.parse_args(argv)

    server = EtcdServer(host=args.host, port=args.port,
                        quiet=not args.verbose)
    if args.port_file:
        with open(args.port_file, "w") as handle:
            handle.write(str(server.port))
    sys.stderr.write(
        f"etcdsim: serving on {server.host}:{server.port}\n"
    )
    sys.stderr.flush()

    def _terminate(_signum, _frame):
        raise SystemExit(0)

    signal.signal(signal.SIGTERM, _terminate)
    try:
        server.serve_forever()
    except (KeyboardInterrupt, SystemExit):
        pass
    finally:
        server.httpd.server_close()
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
