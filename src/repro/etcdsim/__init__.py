"""etcd simulator: the case-study substrate (paper §V).

A faithful miniature of etcd v2 plus python-etcd:

* :class:`~repro.etcdsim.store.EtcdStore` — hierarchical KV store with
  directories, TTL, indices, compare-and-swap, and watch history;
* :class:`~repro.etcdsim.server.EtcdServer` — threaded HTTP frontend
  speaking the etcd v2 wire protocol;
* :class:`~repro.etcdsim.client.Client` — python-etcd-style bindings (the
  software-under-injection);
* :func:`~repro.etcdsim.workload.run_workload` — the integration-test
  workload of the case study;
* :func:`~repro.etcdsim.target.materialize_target` — writes the standalone
  project tree that experiments copy and mutate.
"""

from repro.etcdsim.client import Client, EtcdResult
from repro.etcdsim.errors import (
    EtcdAlreadyExist,
    EtcdCompareFailed,
    EtcdConnectionFailed,
    EtcdError,
    EtcdException,
    EtcdKeyNotFound,
    EtcdValueError,
    EtcdWatchTimedOut,
)
from repro.etcdsim.server import EtcdServer
from repro.etcdsim.store import EtcdStore
from repro.etcdsim.target import (
    INJECTABLE_FILES,
    TargetProject,
    materialize_target,
)
from repro.etcdsim.workload import WorkloadError, run_workload

__all__ = [
    "Client",
    "EtcdAlreadyExist",
    "EtcdCompareFailed",
    "EtcdConnectionFailed",
    "EtcdError",
    "EtcdException",
    "EtcdKeyNotFound",
    "EtcdResult",
    "EtcdServer",
    "EtcdStore",
    "EtcdValueError",
    "EtcdWatchTimedOut",
    "INJECTABLE_FILES",
    "TargetProject",
    "WorkloadError",
    "materialize_target",
    "run_workload",
]
