"""Error hierarchy of the etcdsim client, mirroring python-etcd.

The paper's case study (§V) observes failures such as ``EtcdKeyNotFound``
and ``EtcdException: Bad response: 400 Bad Request``; this module defines
the same exception surface so the reproduced campaigns classify failures
the same way.

This module is self-contained (stdlib only, relative imports) because it is
copied into experiment sandboxes as part of the ``pyetcd`` target package.
"""

from __future__ import annotations

# etcd v2 wire error codes (subset used by the simulator).
EC_KEY_NOT_FOUND = 100
EC_TEST_FAILED = 101
EC_NOT_FILE = 102
EC_NOT_DIR = 104
EC_NODE_EXIST = 105
EC_ROOT_RONLY = 107
EC_DIR_NOT_EMPTY = 108
EC_INVALID_FIELD = 209
EC_INVALID_FORM = 210
EC_RAFT_INTERNAL = 300
EC_WATCH_TIMED_OUT = 401  # simulator-specific wait timeout


class EtcdException(Exception):
    """Generic etcd error (also raised for malformed HTTP responses)."""


class EtcdConnectionFailed(EtcdException):
    """The etcd server could not be reached."""


class EtcdValueError(EtcdException, ValueError):
    """Request rejected by the server as invalid (HTTP 400)."""


class EtcdKeyError(EtcdException, KeyError):
    """Base class for key-related errors."""


class EtcdKeyNotFound(EtcdKeyError):
    """The requested key does not exist (error code 100)."""


class EtcdCompareFailed(EtcdValueError):
    """An atomic compare-and-swap condition failed (error code 101)."""


class EtcdNotFile(EtcdKeyError):
    """Operation requires a file but the key is a directory (code 102)."""


class EtcdNotDir(EtcdKeyError):
    """Operation requires a directory but the key is a file (code 104)."""


class EtcdAlreadyExist(EtcdKeyError):
    """Create requested but the key already exists (error code 105)."""


class EtcdRootReadOnly(EtcdKeyError):
    """The root node cannot be modified (error code 107)."""


class EtcdDirNotEmpty(EtcdValueError):
    """Directory deletion requires recursive=True (error code 108)."""


class EtcdWatchTimedOut(EtcdConnectionFailed):
    """A watch expired without observing an event."""


#: error code -> exception class, mirroring python-etcd's mapping.
ERROR_CODE_EXCEPTIONS: dict[int, type] = {
    EC_KEY_NOT_FOUND: EtcdKeyNotFound,
    EC_TEST_FAILED: EtcdCompareFailed,
    EC_NOT_FILE: EtcdNotFile,
    EC_NOT_DIR: EtcdNotDir,
    EC_NODE_EXIST: EtcdAlreadyExist,
    EC_ROOT_RONLY: EtcdRootReadOnly,
    EC_DIR_NOT_EMPTY: EtcdDirNotEmpty,
    EC_INVALID_FIELD: EtcdValueError,
    EC_INVALID_FORM: EtcdValueError,
    EC_WATCH_TIMED_OUT: EtcdWatchTimedOut,
}


class EtcdError(Exception):
    """Server-side error carrying an etcd wire error code.

    Raised by the store, serialized by the HTTP server, and re-raised by
    the client as the matching :class:`EtcdException` subclass.
    """

    def __init__(self, code: int, message: str, cause: str = "") -> None:
        self.code = code
        self.message = message
        self.cause = cause
        super().__init__(f"[{code}] {message}: {cause}")

    def to_wire(self, index: int) -> dict:
        return {
            "errorCode": self.code,
            "message": self.message,
            "cause": self.cause,
            "index": index,
        }

    @property
    def http_status(self) -> int:
        if self.code in (EC_KEY_NOT_FOUND,):
            return 404
        if self.code in (EC_TEST_FAILED, EC_NODE_EXIST):
            return 412
        if self.code in (EC_RAFT_INTERNAL,):
            return 500
        if self.code in (EC_WATCH_TIMED_OUT,):
            return 408
        return 400


def exception_for(code: int, message: str, cause: str) -> EtcdException:
    """Build the client-side exception for a wire error code."""
    exc_class = ERROR_CODE_EXCEPTIONS.get(code, EtcdException)
    return exc_class(f"{message} : {cause}" if cause else message)
