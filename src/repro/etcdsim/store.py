"""In-memory hierarchical key-value store with etcd v2 semantics.

Implements the behaviour the case study depends on: hierarchical keys with
directories, TTL expiry, created/modified indices, compare-and-swap
(``test_and_set``), recursive reads/deletes, and an event history that
powers watches.  Thread-safe: the HTTP server serves requests from a
thread pool.

Self-contained (stdlib only, relative imports): copied into sandboxes as
part of the ``pyetcd`` target package.
"""

from __future__ import annotations

import threading
import time
from collections import deque
from dataclasses import dataclass, field

from .errors import (
    EC_DIR_NOT_EMPTY,
    EC_INVALID_FIELD,
    EC_KEY_NOT_FOUND,
    EC_NODE_EXIST,
    EC_NOT_DIR,
    EC_NOT_FILE,
    EC_ROOT_RONLY,
    EC_TEST_FAILED,
    EtcdError,
)

#: Bounded history of write events, for watch catch-up.
HISTORY_LIMIT = 1000


def validate_key(key: str) -> str:
    """Normalize and validate a key, rejecting what etcd rejects with 400.

    Keys must be non-empty printable ASCII without control characters;
    the result always has a single leading slash and no trailing slash.
    """
    if not isinstance(key, str):
        raise EtcdError(EC_INVALID_FIELD, "Invalid field", f"key={key!r}")
    if not key.isascii() or any(ord(ch) < 0x20 or ord(ch) == 0x7F for ch in key):
        raise EtcdError(EC_INVALID_FIELD, "Invalid field",
                        "key contains non-ASCII or control characters")
    key = "/" + key.strip("/")
    if key == "/":
        return key
    if any(not segment for segment in key[1:].split("/")):
        raise EtcdError(EC_INVALID_FIELD, "Invalid field",
                        f"empty path segment in {key!r}")
    return key


def validate_value(value: str) -> str:
    """Values must be text without control characters (else HTTP 400)."""
    if not isinstance(value, str):
        raise EtcdError(EC_INVALID_FIELD, "Invalid field", f"value={value!r}")
    if any(ord(ch) < 0x20 and ch not in "\t\n\r" for ch in value):
        raise EtcdError(EC_INVALID_FIELD, "Invalid field",
                        "value contains control characters")
    return value


@dataclass
class Node:
    """One node of the tree: either a value leaf or a directory."""

    key: str
    value: str | None = None
    dir: bool = False
    created_index: int = 0
    modified_index: int = 0
    expiration: float | None = None
    ttl: int | None = None
    children: dict[str, "Node"] = field(default_factory=dict)

    def expired(self, now: float) -> bool:
        return self.expiration is not None and now >= self.expiration

    def to_wire(self, recursive: bool = False, sorted_: bool = False,
                now: float | None = None) -> dict:
        data: dict = {
            "key": self.key,
            "createdIndex": self.created_index,
            "modifiedIndex": self.modified_index,
        }
        if self.dir:
            data["dir"] = True
            names = sorted(self.children) if sorted_ else list(self.children)
            nodes = [self.children[name] for name in names]
            if recursive:
                data["nodes"] = [
                    child.to_wire(recursive=True, sorted_=sorted_, now=now)
                    for child in nodes
                ]
            else:
                data["nodes"] = [
                    {
                        "key": child.key,
                        "createdIndex": child.created_index,
                        "modifiedIndex": child.modified_index,
                        **({"dir": True} if child.dir
                           else {"value": child.value}),
                    }
                    for child in nodes
                ]
        else:
            data["value"] = self.value
        if self.expiration is not None and now is not None:
            data["ttl"] = max(0, int(round(self.expiration - now)))
        return data


@dataclass
class Event:
    """A write event appended to the history (used by watches)."""

    action: str
    key: str
    index: int
    node: dict
    prev_node: dict | None = None

    def to_wire(self) -> dict:
        data = {"action": self.action, "node": self.node}
        if self.prev_node is not None:
            data["prevNode"] = self.prev_node
        return data

    def concerns(self, key: str, recursive: bool) -> bool:
        if self.key == key:
            return True
        return recursive and self.key.startswith(key.rstrip("/") + "/")


class EtcdStore:
    """The mutable tree plus index counter, TTL sweeping, and history."""

    def __init__(self, clock=time.time) -> None:
        self._clock = clock
        self._root = Node(key="/", dir=True)
        self._index = 0
        self._lock = threading.RLock()
        self._history: deque[Event] = deque(maxlen=HISTORY_LIMIT)
        self._changed = threading.Condition(self._lock)

    @property
    def index(self) -> int:
        with self._lock:
            return self._index

    # -- public operations (etcd v2 data model) --------------------------------

    def get(self, key: str, recursive: bool = False,
            sorted_: bool = False) -> Event:
        key = validate_key(key)
        with self._lock:
            self._sweep_expired()
            node = self._find(key)
            if node is None:
                raise EtcdError(EC_KEY_NOT_FOUND, "Key not found", key)
            now = self._clock()
            return Event(
                action="get", key=key, index=self._index,
                node=node.to_wire(recursive=recursive, sorted_=sorted_,
                                  now=now),
            )

    def set(
        self,
        key: str,
        value: str | None = None,
        ttl: int | None = None,
        dir: bool = False,
        prev_exist: bool | None = None,
        prev_value: str | None = None,
        prev_index: int | None = None,
    ) -> Event:
        """Write a key (etcd PUT): create/update a value or a directory."""
        key = validate_key(key)
        if key == "/":
            raise EtcdError(EC_ROOT_RONLY, "Root is read only", key)
        if ttl is not None:
            ttl = self._validate_ttl(ttl)
        if dir:
            if value not in (None, ""):
                raise EtcdError(EC_INVALID_FIELD, "Invalid field",
                                "directories cannot carry a value")
        else:
            value = validate_value(value if value is not None else "")
        with self._lock:
            self._sweep_expired()
            existing = self._find(key)
            if prev_exist is False and existing is not None:
                raise EtcdError(EC_NODE_EXIST, "Key already exists", key)
            if prev_exist is True and existing is None:
                raise EtcdError(EC_KEY_NOT_FOUND, "Key not found", key)
            if prev_value is not None or prev_index is not None:
                self._check_compare(key, existing, prev_value, prev_index)
            if existing is not None and existing.dir and not dir:
                raise EtcdError(EC_NOT_FILE, "Not a file", key)
            if existing is not None and dir and not existing.dir:
                raise EtcdError(EC_NOT_DIR, "Not a directory", key)
            if existing is not None and dir and prev_exist is None:
                raise EtcdError(EC_NODE_EXIST, "Key already exists", key)

            parent = self._ensure_parents(key)
            prev_wire = None if existing is None else existing.to_wire(
                now=self._clock()
            )
            self._index += 1
            now = self._clock()
            name = key.rsplit("/", 1)[-1]
            node = existing or Node(key=key, created_index=self._index)
            node.modified_index = self._index
            node.dir = dir
            node.value = None if dir else value
            node.ttl = ttl
            node.expiration = None if ttl is None else now + ttl
            parent.children[name] = node

            if prev_value is not None or prev_index is not None:
                action = "compareAndSwap"
            elif prev_exist is True:
                action = "update"
            elif prev_exist is False or existing is None:
                action = "create"
            else:
                action = "set"
            return self._record(action, key, node, prev_wire)

    def compare_and_swap(
        self,
        key: str,
        value: str,
        prev_value: str | None = None,
        prev_index: int | None = None,
    ) -> Event:
        """Atomic test-and-set (the case-study's ``test_and_set``)."""
        if prev_value is None and prev_index is None:
            raise EtcdError(EC_INVALID_FIELD, "Invalid field",
                            "compareAndSwap requires prevValue or prevIndex")
        return self.set(key, value, prev_value=prev_value,
                        prev_index=prev_index)

    def delete(self, key: str, recursive: bool = False,
               dir: bool = False) -> Event:
        key = validate_key(key)
        if key == "/":
            raise EtcdError(EC_ROOT_RONLY, "Root is read only", key)
        with self._lock:
            self._sweep_expired()
            node = self._find(key)
            if node is None:
                raise EtcdError(EC_KEY_NOT_FOUND, "Key not found", key)
            if node.dir and not (dir or recursive):
                raise EtcdError(EC_NOT_FILE, "Not a file", key)
            if node.dir and node.children and not recursive:
                raise EtcdError(EC_DIR_NOT_EMPTY, "Directory not empty", key)
            parent = self._find(key.rsplit("/", 1)[0] or "/")
            prev_wire = node.to_wire(now=self._clock())
            self._index += 1
            name = key.rsplit("/", 1)[-1]
            del parent.children[name]
            tombstone = Node(
                key=key, dir=node.dir,
                created_index=node.created_index,
                modified_index=self._index,
            )
            return self._record("delete", key, tombstone, prev_wire)

    def wait(self, key: str, wait_index: int | None = None,
             recursive: bool = False, timeout: float = 5.0) -> Event | None:
        """Block until a write event concerns ``key`` (etcd wait=true).

        Returns None on timeout.  With ``wait_index`` the history is
        searched first, so no event is missed between requests.
        """
        key = validate_key(key)
        deadline = time.monotonic() + timeout
        with self._changed:
            while True:
                if wait_index is not None:
                    for event in self._history:
                        if (event.index >= wait_index
                                and event.concerns(key, recursive)):
                            return event
                current = self._index
                remaining = deadline - time.monotonic()
                if remaining <= 0:
                    return None
                self._changed.wait(timeout=remaining)
                if wait_index is None:
                    # Only events after subscription count.
                    for event in self._history:
                        if (event.index > current
                                and event.concerns(key, recursive)):
                            return event

    def stats(self) -> dict:
        with self._lock:
            leaves, dirs = self._count(self._root)
            return {
                "etcdIndex": self._index,
                "keys": leaves,
                "dirs": dirs - 1,  # exclude the root
                "watchers": 0,
            }

    # -- internals --------------------------------------------------------------

    @staticmethod
    def _validate_ttl(ttl) -> int:
        try:
            ttl = int(ttl)
        except (TypeError, ValueError):
            raise EtcdError(EC_INVALID_FIELD, "Invalid field",
                            f"ttl={ttl!r} is not an integer") from None
        if ttl <= 0:
            raise EtcdError(EC_INVALID_FIELD, "Invalid field",
                            f"ttl={ttl} must be positive")
        return ttl

    def _check_compare(self, key: str, existing: Node | None,
                       prev_value: str | None,
                       prev_index: int | None) -> None:
        if existing is None:
            raise EtcdError(EC_KEY_NOT_FOUND, "Key not found", key)
        if existing.dir:
            raise EtcdError(EC_NOT_FILE, "Not a file", key)
        if prev_value is not None and existing.value != prev_value:
            raise EtcdError(
                EC_TEST_FAILED, "Compare failed",
                f"[{prev_value} != {existing.value}]",
            )
        if prev_index is not None and existing.modified_index != prev_index:
            raise EtcdError(
                EC_TEST_FAILED, "Compare failed",
                f"[{prev_index} != {existing.modified_index}]",
            )

    def _find(self, key: str) -> Node | None:
        if key == "/":
            return self._root
        node = self._root
        for segment in key[1:].split("/"):
            if not node.dir:
                return None
            node = node.children.get(segment)
            if node is None:
                return None
        return node

    def _ensure_parents(self, key: str) -> Node:
        node = self._root
        segments = key[1:].split("/")
        path = ""
        for segment in segments[:-1]:
            path += "/" + segment
            child = node.children.get(segment)
            if child is None:
                self._index += 1
                child = Node(key=path, dir=True,
                             created_index=self._index,
                             modified_index=self._index)
                node.children[segment] = child
            elif not child.dir:
                raise EtcdError(EC_NOT_DIR, "Not a directory", path)
            node = child
        return node

    def _sweep_expired(self) -> None:
        now = self._clock()
        self._sweep_node(self._root, now)

    def _sweep_node(self, node: Node, now: float) -> None:
        for name in list(node.children):
            child = node.children[name]
            if child.expired(now):
                self._index += 1
                prev_wire = child.to_wire(now=now)
                del node.children[name]
                tombstone = Node(
                    key=child.key, dir=child.dir,
                    created_index=child.created_index,
                    modified_index=self._index,
                )
                self._record("expire", child.key, tombstone, prev_wire)
            elif child.dir:
                self._sweep_node(child, now)

    def _record(self, action: str, key: str, node: Node,
                prev_wire: dict | None) -> Event:
        event = Event(
            action=action, key=key, index=self._index,
            node=node.to_wire(now=self._clock()), prev_node=prev_wire,
        )
        self._history.append(event)
        self._changed.notify_all()
        return event

    def _count(self, node: Node) -> tuple[int, int]:
        leaves, dirs = (0, 1) if node.dir else (1, 0)
        for child in node.children.values():
            c_leaves, c_dirs = self._count(child)
            leaves += c_leaves
            dirs += c_dirs
        return leaves, dirs
