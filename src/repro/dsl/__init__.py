"""Fault-injection domain-specific language (paper §III).

A bug specification describes how source code should be transformed to
introduce a software bug::

    change {
        $BLOCK{tag=b1; stmts=1,*}
        $CALL{name=delete_*}(...)
        $BLOCK{tag=b2; stmts=1,*}
    } into {
        $BLOCK{tag=b1}
        $BLOCK{tag=b2}
    }

The *code pattern* (``change``) selects program elements; the *code
replacement* (``into``) describes the faulty code, reusing tagged parts of
the match.  :func:`compile_text` turns spec text into a
:class:`~repro.dsl.metamodel.MetaModel` consumed by the scanner and mutator.
"""

from repro.dsl.compiler import compile_all, compile_spec, compile_text
from repro.dsl.directives import Directive, DirectiveKind
from repro.dsl.errors import (
    BindingError,
    DslDirectiveError,
    DslError,
    DslParameterError,
    DslSyntaxError,
    PatternCompileError,
)
from repro.dsl.metamodel import MetaModel
from repro.dsl.parser import BugSpec, parse_spec, parse_specs

__all__ = [
    "BindingError",
    "BugSpec",
    "Directive",
    "DirectiveKind",
    "DslDirectiveError",
    "DslError",
    "DslParameterError",
    "DslSyntaxError",
    "MetaModel",
    "PatternCompileError",
    "compile_all",
    "compile_spec",
    "compile_text",
    "parse_spec",
    "parse_specs",
]
