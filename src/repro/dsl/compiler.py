"""DSL compiler: bug specification text → :class:`MetaModel` (paper §IV-A).

Pipeline: lex each side (directives → placeholders), parse the resulting
plain Python with :func:`ast.parse`, then validate directive placement and
tag binding.  Validation failures raise precise :mod:`repro.dsl.errors`
exceptions so users can fix their specs.
"""

from __future__ import annotations

import ast

from repro.dsl.directives import Directive, DirectiveKind
from repro.dsl.errors import (
    BindingError,
    DslDirectiveError,
    PatternCompileError,
)
from repro.dsl.lexer import lex_fragment
from repro.dsl.metamodel import MetaModel
from repro.dsl.parser import BugSpec, parse_spec, parse_specs

#: Pattern-side matcher directives that may appear on the replacement side
#: only as references to a tag bound in the pattern.
_MATCHER_KINDS = {
    DirectiveKind.CALL,
    DirectiveKind.BLOCK,
    DirectiveKind.EXPR,
    DirectiveKind.STRING,
    DirectiveKind.NUM,
    DirectiveKind.VAR,
}


def compile_spec(spec: BugSpec) -> MetaModel:
    """Compile one parsed bug specification into a meta-model."""
    pattern_lex = lex_fragment(spec.pattern)
    replacement_lex = lex_fragment(
        spec.replacement, start_index=len(pattern_lex.directives)
    )

    pattern_module = _parse_side(pattern_lex.text, spec, side="change")
    replacement_module = _parse_side(replacement_lex.text, spec, side="into")

    if not pattern_module.body:
        raise PatternCompileError(
            f"spec {spec.name!r}: the change pattern is empty"
        )

    directives: dict[str, Directive] = {}
    directives.update(pattern_lex.directives)
    directives.update(replacement_lex.directives)

    bound_tags: dict[str, Directive] = {}
    for directive in pattern_lex.directives.values():
        directive.in_replacement = False
        directive.require_pattern_side()
        if directive.tag is not None:
            if directive.tag in bound_tags:
                raise BindingError(
                    f"spec {spec.name!r}: tag #{directive.tag} bound twice "
                    "in the change pattern",
                    line=directive.line,
                )
            bound_tags[directive.tag] = directive

    for directive in replacement_lex.directives.values():
        directive.in_replacement = True
        if directive.kind in _MATCHER_KINDS:
            _validate_replacement_reference(spec, directive, bound_tags)

    model = MetaModel(
        spec=spec,
        pattern_module=pattern_module,
        replacement_module=replacement_module,
        directives=directives,
        bound_tags=bound_tags,
    )
    _validate_block_positions(model)
    # Imported late: the scanner package imports the DSL at module level.
    from repro.scanner.prefilter import derive_requirements

    model.requirements = derive_requirements(model)
    return model


def compile_text(text: str, name: str | None = None) -> MetaModel:
    """Parse and compile a single spec from raw DSL text."""
    return compile_spec(parse_spec(text, name=name))


def compile_all(text: str) -> list[MetaModel]:
    """Parse and compile every spec found in raw DSL text."""
    return [compile_spec(spec) for spec in parse_specs(text)]


def _parse_side(text: str, spec: BugSpec, side: str) -> ast.Module:
    if not text.strip():
        return ast.Module(body=[], type_ignores=[])
    try:
        return ast.parse(text)
    except SyntaxError as exc:
        raise PatternCompileError(
            f"spec {spec.name!r}: the {side} block is not valid "
            f"(extended) Python: {exc.msg}",
            line=exc.lineno,
            snippet=exc.text,
        ) from exc


def _validate_replacement_reference(
    spec: BugSpec, directive: Directive, bound_tags: dict[str, Directive]
) -> None:
    if directive.tag is None:
        raise BindingError(
            f"spec {spec.name!r}: ${directive.kind.value} in the into block "
            "must reference a tag bound in the change pattern "
            "(write e.g. $CALL#c or $BLOCK{tag=b1})",
            line=directive.line,
        )
    binder = bound_tags.get(directive.tag)
    if binder is None:
        raise BindingError(
            f"spec {spec.name!r}: tag #{directive.tag} is not bound in the "
            "change pattern",
            line=directive.line,
        )
    if binder.kind is not directive.kind:
        raise BindingError(
            f"spec {spec.name!r}: tag #{directive.tag} is bound by "
            f"${binder.kind.value} but referenced as ${directive.kind.value}",
            line=directive.line,
        )


def _validate_block_positions(model: MetaModel) -> None:
    """$BLOCK (and statement actions) must sit in statement position."""
    for module in (model.pattern_module, model.replacement_module):
        statement_names = set()
        for node in ast.walk(module):
            if isinstance(node, ast.Expr):
                directive = model.directive_of_name(node.value)
                if directive is not None:
                    statement_names.add(node.value.id)  # type: ignore[union-attr]
        for placeholder, directive in model.directives.items():
            if directive.kind is not DirectiveKind.BLOCK:
                continue
            for node in ast.walk(module):
                if isinstance(node, ast.Name) and node.id == placeholder:
                    if placeholder not in statement_names:
                        raise DslDirectiveError(
                            f"spec {model.name!r}: $BLOCK must appear on a "
                            "line of its own (statement position)",
                            line=directive.line,
                        )
