"""Exception hierarchy for the fault-injection DSL.

All DSL problems raise :class:`DslError` subclasses carrying the offending
spec text location, so the service layer can report actionable messages to
the user who wrote the bug specification.
"""

from __future__ import annotations


class DslError(Exception):
    """Base class for every error raised while handling a bug spec."""

    def __init__(self, message: str, *, line: int | None = None,
                 column: int | None = None, snippet: str | None = None) -> None:
        self.line = line
        self.column = column
        self.snippet = snippet
        location = ""
        if line is not None:
            location = f" (line {line}" + (
                f", column {column})" if column is not None else ")"
            )
        detail = f"\n    {snippet.strip()}" if snippet else ""
        super().__init__(f"{message}{location}{detail}")


class DslSyntaxError(DslError):
    """The spec text does not follow ``change {{ ... }} into {{ ... }}``."""


class DslParameterError(DslError):
    """A directive has an unknown, malformed, or conflicting parameter."""


class DslDirectiveError(DslError):
    """A directive is used in a position where it is not allowed."""


class PatternCompileError(DslError):
    """The pattern or replacement is not parseable as (extended) Python."""


class BindingError(DslError):
    """A replacement references a tag that the pattern never binds."""
