"""Directive definitions for the fault-injection DSL.

A *directive* is a ``$NAME`` token inside a bug specification.  Pattern-side
directives describe which program elements to match ($CALL, $BLOCK, $EXPR,
$STRING, $NUM, $VAR); replacement-side *action* directives describe the
faulty code to synthesize ($CORRUPT, $HOG, $TIMEOUT, $PICK).

Each occurrence in a spec becomes one :class:`Directive` instance, uniquely
identified by the placeholder the lexer substitutes into the Python text.
"""

from __future__ import annotations

from dataclasses import dataclass
from enum import Enum

from repro.dsl.errors import DslDirectiveError, DslParameterError
from repro.dsl.params import UNBOUNDED, DirectiveParams


class DirectiveKind(str, Enum):
    """Every directive understood by the DSL compiler."""

    CALL = "CALL"        # a function/method call
    BLOCK = "BLOCK"      # a variable-length sequence of statements
    EXPR = "EXPR"        # any expression (optionally a specific variable)
    STRING = "STRING"    # a string literal
    NUM = "NUM"          # a numeric literal
    VAR = "VAR"          # a variable name
    CORRUPT = "CORRUPT"  # action: corrupt a value at run time
    HOG = "HOG"          # action: spawn a resource hog at run time
    TIMEOUT = "TIMEOUT"  # action: inject a delay at run time
    PICK = "PICK"        # action: choose one snippet at mutation time


#: Directives that may only appear in the ``into { ... }`` replacement.
ACTION_KINDS = {
    DirectiveKind.CORRUPT,
    DirectiveKind.HOG,
    DirectiveKind.TIMEOUT,
    DirectiveKind.PICK,
}

#: Allowed parameter names per directive kind.
ALLOWED_PARAMS: dict[DirectiveKind, set[str]] = {
    DirectiveKind.CALL: {"name", "ctx", "tag"},
    DirectiveKind.BLOCK: {"tag", "stmts"},
    DirectiveKind.EXPR: {"var", "tag"},
    DirectiveKind.STRING: {"val", "tag"},
    DirectiveKind.NUM: {"min", "max", "tag"},
    DirectiveKind.VAR: {"name", "tag"},
    DirectiveKind.CORRUPT: {"mode"},
    DirectiveKind.HOG: {"resource", "seconds", "threads", "mb"},
    DirectiveKind.TIMEOUT: {"seconds"},
    DirectiveKind.PICK: {"choices"},
}

#: Valid values for constrained enum-ish parameters.
CALL_CONTEXTS = {"stmt", "any"}
CORRUPT_MODES = {"auto", "string", "int", "none", "negate"}
HOG_RESOURCES = {"cpu", "memory", "disk"}


@dataclass
class Directive:
    """One ``$NAME#tag{params}`` occurrence in a bug specification."""

    kind: DirectiveKind
    tag: str | None
    params: DirectiveParams
    placeholder: str
    line: int | None = None
    #: Filled by the compiler: True when this occurrence lives in the
    #: replacement (``into``) side of the spec.
    in_replacement: bool = False

    def __post_init__(self) -> None:
        self.params.require_known(ALLOWED_PARAMS[self.kind], self.kind.value)
        tag_param = self.params.get("tag")
        if tag_param is not None:
            if self.tag is not None and self.tag != tag_param:
                raise DslParameterError(
                    f"${self.kind.value} has conflicting tags "
                    f"#{self.tag} and tag={tag_param}",
                    line=self.line,
                )
            self.tag = tag_param
        self._validate_kind()

    # -- per-kind validation & typed accessors ------------------------------

    def _validate_kind(self) -> None:
        if self.kind is DirectiveKind.CALL:
            ctx = self.params.get("ctx", "stmt")
            if ctx not in CALL_CONTEXTS:
                raise DslParameterError(
                    f"ctx must be one of {sorted(CALL_CONTEXTS)}, got {ctx!r}",
                    line=self.line,
                )
        elif self.kind is DirectiveKind.BLOCK:
            self.params.get_range("stmts", (1, UNBOUNDED))
        elif self.kind is DirectiveKind.CORRUPT:
            mode = self.params.get("mode", "auto")
            if mode not in CORRUPT_MODES:
                raise DslParameterError(
                    f"mode must be one of {sorted(CORRUPT_MODES)}, got {mode!r}",
                    line=self.line,
                )
        elif self.kind is DirectiveKind.HOG:
            resource = self.params.get("resource", "cpu")
            if resource not in HOG_RESOURCES:
                raise DslParameterError(
                    f"resource must be one of {sorted(HOG_RESOURCES)}, "
                    f"got {resource!r}",
                    line=self.line,
                )
            self.params.get_float("seconds", 2.0)
            self.params.get_int("threads", 2)
        elif self.kind is DirectiveKind.TIMEOUT:
            self.params.get_float("seconds", 1.0)
        elif self.kind is DirectiveKind.PICK:
            self.params.get_choices("choices")
        elif self.kind is DirectiveKind.NUM:
            self.params.get_float("min", float("-inf"))
            self.params.get_float("max", float("inf"))

    # Convenience accessors used by the matcher and mutator -----------------

    @property
    def name_pattern(self) -> str:
        """Glob for $CALL/$VAR names (``*`` when unconstrained)."""
        return self.params.get("name", "*") or "*"

    @property
    def value_pattern(self) -> str:
        """Glob for $STRING values (``*`` when unconstrained)."""
        return self.params.get("val", "*") or "*"

    @property
    def var_pattern(self) -> str | None:
        """Variable-name constraint of $EXPR, or None for any expression."""
        return self.params.get("var")

    @property
    def stmt_range(self) -> tuple[int, int]:
        """(min, max) statements for $BLOCK; max=UNBOUNDED means ``*``."""
        return self.params.get_range("stmts", (1, UNBOUNDED))

    @property
    def call_context(self) -> str:
        return self.params.get("ctx", "stmt") or "stmt"

    @property
    def is_action(self) -> bool:
        return self.kind in ACTION_KINDS

    def require_pattern_side(self) -> None:
        """Raise if an action directive is used inside ``change { ... }``."""
        if self.is_action:
            raise DslDirectiveError(
                f"${self.kind.value} is a replacement-side action directive "
                "and cannot appear in the change pattern",
                line=self.line,
            )

    def describe(self) -> str:
        tag = f"#{self.tag}" if self.tag else ""
        body = "; ".join(f"{k}={v}" for k, v in self.params.raw.items())
        return f"${self.kind.value}{tag}" + (f"{{{body}}}" if body else "")


def make_directive(
    name: str,
    tag: str | None,
    params_text: str,
    placeholder: str,
    line: int | None = None,
) -> Directive:
    """Build and validate a directive from its lexed pieces."""
    try:
        kind = DirectiveKind(name)
    except ValueError:
        known = ", ".join(sorted(k.value for k in DirectiveKind))
        raise DslDirectiveError(
            f"unknown directive ${name} (known: {known})", line=line
        ) from None
    params = DirectiveParams.parse(params_text, line=line)
    return Directive(kind=kind, tag=tag, params=params,
                     placeholder=placeholder, line=line)
