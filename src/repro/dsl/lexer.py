"""Lexer: turn DSL-extended Python into plain Python plus directives.

The DSL embeds ``$NAME#tag{params}`` directives inside otherwise ordinary
Python source.  The lexer substitutes each directive occurrence with a
unique placeholder identifier, producing text that :func:`ast.parse`
accepts; the compiler then lifts the placeholders back into directive
nodes.  Directives inside Python string literals are left untouched, so a
pattern may legitimately match code containing ``"$"`` characters.
"""

from __future__ import annotations

import re
from dataclasses import dataclass, field

from repro.dsl.directives import Directive, make_directive
from repro.dsl.errors import DslSyntaxError

PLACEHOLDER_PREFIX = "_PFP_PH_"
PLACEHOLDER_RE = re.compile(rf"^{PLACEHOLDER_PREFIX}(\d+)_$")

_NAME_RE = re.compile(r"[A-Z][A-Z0-9_]*")
_TAG_RE = re.compile(r"[A-Za-z_][A-Za-z0-9_]*")


def placeholder_name(index: int) -> str:
    """Placeholder identifier substituted for the ``index``-th directive."""
    return f"{PLACEHOLDER_PREFIX}{index}_"


def is_placeholder(identifier: str) -> bool:
    """True when ``identifier`` was produced by :func:`placeholder_name`."""
    return PLACEHOLDER_RE.match(identifier) is not None


@dataclass
class LexResult:
    """Plain-Python text plus the directives that were substituted out."""

    text: str
    directives: dict[str, Directive] = field(default_factory=dict)


class _Scanner:
    """Character scanner that understands Python quoting well enough to
    know whether a ``$`` sits inside a string literal."""

    def __init__(self, text: str) -> None:
        self.text = text
        self.pos = 0

    def eof(self) -> bool:
        return self.pos >= len(self.text)

    def peek(self) -> str:
        return self.text[self.pos] if self.pos < len(self.text) else ""

    def line_at(self, pos: int) -> int:
        return self.text.count("\n", 0, pos) + 1

    def skip_string(self) -> None:
        """Advance past the string literal starting at ``self.pos``."""
        text = self.text
        quote = text[self.pos]
        triple = text[self.pos:self.pos + 3] in ('"""', "'''")
        delim = quote * 3 if triple else quote
        self.pos += len(delim)
        while self.pos < len(text):
            if text[self.pos] == "\\" and not triple:
                self.pos += 2
                continue
            if text.startswith(delim, self.pos):
                self.pos += len(delim)
                return
            self.pos += 1
        # Unterminated string: leave it to ast.parse to report properly.

    def skip_comment(self) -> None:
        newline = self.text.find("\n", self.pos)
        self.pos = len(self.text) if newline == -1 else newline

    def read_balanced_braces(self) -> str:
        """Read a ``{...}`` group (quote-aware, nesting-aware), return body."""
        assert self.peek() == "{"
        start = self.pos
        depth = 0
        quote: str | None = None
        while self.pos < len(self.text):
            char = self.text[self.pos]
            if quote is not None:
                if char == "\\":
                    self.pos += 2
                    continue
                if char == quote:
                    quote = None
            elif char in "'\"":
                quote = char
            elif char == "{":
                depth += 1
            elif char == "}":
                depth -= 1
                if depth == 0:
                    self.pos += 1
                    return self.text[start + 1:self.pos - 1]
            self.pos += 1
        raise DslSyntaxError(
            "unterminated '{' in directive parameters",
            line=self.line_at(start),
            snippet=self.text[start:start + 40],
        )


def lex_fragment(text: str, start_index: int = 0) -> LexResult:
    """Substitute every directive in ``text`` with a placeholder.

    ``start_index`` offsets placeholder numbering so that the pattern and
    replacement sides of one spec never reuse a placeholder.
    """
    scanner = _Scanner(text)
    output: list[str] = []
    directives: dict[str, Directive] = {}
    counter = start_index
    last = 0
    while not scanner.eof():
        char = scanner.peek()
        if char in "'\"":
            scanner.skip_string()
            continue
        if char == "#":
            scanner.skip_comment()
            continue
        if char != "$":
            scanner.pos += 1
            continue
        # Possible directive start.
        match = _NAME_RE.match(text, scanner.pos + 1)
        if match is None:
            scanner.pos += 1
            continue
        directive_start = scanner.pos
        line = scanner.line_at(directive_start)
        name = match.group(0)
        scanner.pos = match.end()
        tag: str | None = None
        if scanner.peek() == "#":
            tag_match = _TAG_RE.match(text, scanner.pos + 1)
            if tag_match is None:
                raise DslSyntaxError(
                    f"expected tag name after ${name}#",
                    line=line, snippet=text[directive_start:directive_start + 40],
                )
            tag = tag_match.group(0)
            scanner.pos = tag_match.end()
        params_text = ""
        if scanner.peek() == "{":
            params_text = scanner.read_balanced_braces()
        placeholder = placeholder_name(counter)
        counter += 1
        directive = make_directive(name, tag, params_text, placeholder, line)
        directives[placeholder] = directive
        output.append(text[last:directive_start])
        output.append(placeholder)
        last = scanner.pos
    output.append(text[last:])
    return LexResult(text="".join(output), directives=directives)
