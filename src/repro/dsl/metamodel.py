"""The meta-model: compiled form of a bug specification (paper §IV-A).

The DSL compiler produces a :class:`MetaModel` — "a small AST that reflects
the structure of the code in the code pattern".  Concretely, both the
pattern and the replacement are held as real :mod:`ast` trees in which each
directive occurrence appears as a placeholder ``Name`` node; a side table
maps placeholders back to :class:`~repro.dsl.directives.Directive` objects.

Keeping genuine ``ast`` nodes means the source-code scanner can walk the
pattern and the target program with one uniform recursion, and the mutator
can emit code with :func:`ast.unparse`.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from typing import TYPE_CHECKING

from repro.dsl.directives import Directive, DirectiveKind
from repro.dsl.lexer import is_placeholder
from repro.dsl.parser import BugSpec

if TYPE_CHECKING:  # pragma: no cover - import cycle broken at runtime
    from repro.scanner.prefilter import SpecRequirements


@dataclass
class MetaModel:
    """Compiled bug specification ready for scanning and mutation."""

    spec: BugSpec
    pattern_module: ast.Module
    replacement_module: ast.Module
    directives: dict[str, Directive] = field(default_factory=dict)
    #: Tags bound on the pattern side, mapped to their binding directive.
    bound_tags: dict[str, Directive] = field(default_factory=dict)
    #: Fingerprint requirement derived by the compiler; the scan engine
    #: skips files that cannot satisfy it (None = never prefilter).
    requirements: "SpecRequirements | None" = None

    @property
    def name(self) -> str:
        return self.spec.name

    @property
    def pattern_stmts(self) -> list[ast.stmt]:
        return self.pattern_module.body

    @property
    def replacement_stmts(self) -> list[ast.stmt]:
        return self.replacement_module.body

    # -- placeholder resolution used by the matcher and mutator -------------

    def directive_of_name(self, node: ast.AST) -> Directive | None:
        """Directive for a bare placeholder ``Name`` node, else None."""
        if isinstance(node, ast.Name) and is_placeholder(node.id):
            return self.directives.get(node.id)
        return None

    def directive_of_call(self, node: ast.AST) -> Directive | None:
        """Directive when ``node`` is ``placeholder(...)``, else None."""
        if isinstance(node, ast.Call):
            return self.directive_of_name(node.func)
        return None

    def directive_of_stmt(self, stmt: ast.stmt) -> Directive | None:
        """Directive when ``stmt`` is a bare placeholder statement."""
        if isinstance(stmt, ast.Expr):
            return self.directive_of_name(stmt.value)
        return None

    def stmt_directive_kind(self, stmt: ast.stmt) -> DirectiveKind | None:
        directive = self.directive_of_stmt(stmt)
        return directive.kind if directive else None

    def describe(self) -> str:
        parts = [d.describe() for d in self.directives.values()]
        return f"MetaModel({self.name}; directives: {', '.join(parts) or 'none'})"


def iter_placeholder_names(tree: ast.AST):
    """Yield every placeholder ``Name`` node in ``tree``."""
    for node in ast.walk(tree):
        if isinstance(node, ast.Name) and is_placeholder(node.id):
            yield node


def is_ellipsis_expr(node: ast.AST) -> bool:
    """True for a literal ``...`` expression (the arg/statement wildcard)."""
    return isinstance(node, ast.Constant) and node.value is Ellipsis


def is_ellipsis_stmt(stmt: ast.stmt) -> bool:
    """True for a bare ``...`` statement (sugar for ``$BLOCK{stmts=0,*}``)."""
    return isinstance(stmt, ast.Expr) and is_ellipsis_expr(stmt.value)
