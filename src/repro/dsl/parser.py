"""Parser for the outer ``change { ... } into { ... }`` spec structure.

A *bug specification* is the unit the user writes (paper Fig. 1).  A spec
file may contain several specifications, each optionally preceded by a
``# name: <identifier>`` comment that names the fault type (MFC, MIFS,
WPF, ...).  Unnamed specs get positional names (``spec_1``, ``spec_2``).
"""

from __future__ import annotations

import re
from dataclasses import dataclass

from repro.common.textutil import dedent_block
from repro.dsl.errors import DslSyntaxError

_CHANGE_RE = re.compile(r"\bchange\b")
_INTO_RE = re.compile(r"\binto\b")
_NAME_COMMENT_RE = re.compile(r"^\s*#\s*name\s*:\s*(\S+)\s*$", re.MULTILINE)


@dataclass(frozen=True)
class BugSpec:
    """One ``change { ... } into { ... }`` bug specification.

    ``pattern`` and ``replacement`` hold the dedented block bodies; the
    original spec text is kept for round-tripping into fault-model JSON.
    """

    name: str
    pattern: str
    replacement: str
    raw: str

    def describe(self) -> str:
        return f"BugSpec({self.name})"


def _find_block(text: str, start: int, keyword: str) -> tuple[str, int]:
    """Read the ``{ ... }`` block following ``keyword`` at ``start``.

    Returns (block body, index one past the closing brace).  The scan is
    quote-aware and nesting-aware so directive parameter blocks and dict
    literals inside the pattern do not confuse it.
    """
    index = start
    while index < len(text) and text[index].isspace():
        index += 1
    if index >= len(text) or text[index] != "{":
        line = text.count("\n", 0, start) + 1
        raise DslSyntaxError(
            f"expected '{{' after '{keyword}'", line=line,
            snippet=text[start:start + 40],
        )
    depth = 0
    quote: str | None = None
    open_index = index
    while index < len(text):
        char = text[index]
        if quote is not None:
            if char == "\\":
                index += 2
                continue
            if char == quote:
                quote = None
        elif char in "'\"":
            quote = char
        elif char == "{":
            depth += 1
        elif char == "}":
            depth -= 1
            if depth == 0:
                return text[open_index + 1:index], index + 1
        index += 1
    line = text.count("\n", 0, open_index) + 1
    raise DslSyntaxError(
        f"unterminated '{{' block after '{keyword}'", line=line,
        snippet=text[open_index:open_index + 40],
    )


def parse_spec(text: str, name: str | None = None) -> BugSpec:
    """Parse exactly one bug specification from ``text``."""
    specs = parse_specs(text)
    if len(specs) != 1:
        raise DslSyntaxError(
            f"expected exactly one change/into specification, found {len(specs)}"
        )
    spec = specs[0]
    if name is not None:
        spec = BugSpec(name=name, pattern=spec.pattern,
                       replacement=spec.replacement, raw=spec.raw)
    return spec


def parse_specs(text: str) -> list[BugSpec]:
    """Parse every ``change {...} into {...}`` pair in ``text``, in order."""
    specs: list[BugSpec] = []
    cursor = 0
    ordinal = 0
    while True:
        change = _CHANGE_RE.search(text, cursor)
        if change is None:
            break
        ordinal += 1
        spec_start = change.start()
        pattern_text, after_pattern = _find_block(text, change.end(), "change")
        into = _INTO_RE.search(text, after_pattern)
        if into is None:
            line = text.count("\n", 0, after_pattern) + 1
            raise DslSyntaxError("expected 'into' after change block", line=line)
        gap = text[after_pattern:into.start()]
        if gap.strip():
            line = text.count("\n", 0, after_pattern) + 1
            raise DslSyntaxError(
                f"unexpected text between change and into: {gap.strip()[:40]!r}",
                line=line,
            )
        replacement_text, after_replacement = _find_block(text, into.end(), "into")
        name = _name_for(text, spec_start, ordinal)
        specs.append(
            BugSpec(
                name=name,
                pattern=dedent_block(pattern_text),
                replacement=dedent_block(replacement_text),
                raw=text[spec_start:after_replacement],
            )
        )
        cursor = after_replacement
    if not specs and text.strip():
        raise DslSyntaxError("no 'change { ... } into { ... }' found in spec text")
    return specs


def _name_for(text: str, spec_start: int, ordinal: int) -> str:
    """Name from the nearest preceding ``# name:`` comment, else positional."""
    best: str | None = None
    for match in _NAME_COMMENT_RE.finditer(text, 0, spec_start):
        best = match.group(1)
        best_end = match.end()
    if best is not None:
        # Only honour the comment if no other spec sits between it and us.
        intervening = _CHANGE_RE.search(text, best_end, spec_start)
        if intervening is None:
            return best
    return f"spec_{ordinal}"
