"""Parsing and typed access for directive parameter blocks.

A directive may carry a brace-delimited parameter block, e.g.::

    $BLOCK{tag=b1; stmts=1,*}
    $CALL{name=delete_*}
    $PICK{choices=TimeoutError('x')|ValueError('y')}

Parameters are ``key=value`` pairs separated by ``;``.  Values are raw text
up to the separator; quotes and nested braces inside values are honoured so
that Python snippets (``choices=...``) survive intact.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.dsl.errors import DslParameterError

#: Marker for an unbounded upper limit in a ``stmts=min,max`` range.
UNBOUNDED = -1


def split_top_level(text: str, separator: str) -> list[str]:
    """Split ``text`` on ``separator`` at brace depth zero, outside quotes."""
    parts: list[str] = []
    current: list[str] = []
    depth = 0
    quote: str | None = None
    index = 0
    while index < len(text):
        char = text[index]
        if quote is not None:
            current.append(char)
            if char == "\\" and index + 1 < len(text):
                current.append(text[index + 1])
                index += 2
                continue
            if char == quote:
                quote = None
        elif char in "'\"":
            quote = char
            current.append(char)
        elif char in "{([":
            depth += 1
            current.append(char)
        elif char in "})]":
            depth -= 1
            current.append(char)
        elif char == separator and depth == 0:
            parts.append("".join(current))
            current = []
        else:
            current.append(char)
        index += 1
    parts.append("".join(current))
    return parts


@dataclass
class DirectiveParams:
    """Typed accessor over the raw ``key=value`` pairs of one directive."""

    raw: dict[str, str] = field(default_factory=dict)
    line: int | None = None

    @classmethod
    def parse(cls, text: str, line: int | None = None) -> "DirectiveParams":
        """Parse the inside of a ``{...}`` parameter block."""
        params: dict[str, str] = {}
        text = text.strip()
        if not text:
            return cls(params, line)
        for part in split_top_level(text, ";"):
            part = part.strip()
            if not part:
                continue
            if "=" not in part:
                raise DslParameterError(
                    f"malformed parameter {part!r}: expected key=value",
                    line=line, snippet=text,
                )
            key, _, value = part.partition("=")
            key = key.strip()
            value = value.strip()
            if not key:
                raise DslParameterError(
                    f"empty parameter name in {part!r}", line=line, snippet=text
                )
            if key in params:
                raise DslParameterError(
                    f"duplicate parameter {key!r}", line=line, snippet=text
                )
            params[key] = value
        return cls(params, line)

    def get(self, key: str, default: str | None = None) -> str | None:
        return self.raw.get(key, default)

    def get_float(self, key: str, default: float) -> float:
        value = self.raw.get(key)
        if value is None:
            return default
        try:
            return float(value)
        except ValueError:
            raise DslParameterError(
                f"parameter {key!r} must be a number, got {value!r}",
                line=self.line,
            ) from None

    def get_int(self, key: str, default: int) -> int:
        value = self.raw.get(key)
        if value is None:
            return default
        try:
            return int(value)
        except ValueError:
            raise DslParameterError(
                f"parameter {key!r} must be an integer, got {value!r}",
                line=self.line,
            ) from None

    def get_range(self, key: str, default: tuple[int, int]) -> tuple[int, int]:
        """Parse a ``min,max`` range where max may be ``*`` (unbounded)."""
        value = self.raw.get(key)
        if value is None:
            return default
        pieces = [p.strip() for p in value.split(",")]
        if len(pieces) == 1:
            pieces = [pieces[0], pieces[0]]
        if len(pieces) != 2:
            raise DslParameterError(
                f"parameter {key!r} must be 'min,max', got {value!r}",
                line=self.line,
            )
        try:
            low = int(pieces[0])
            high = UNBOUNDED if pieces[1] == "*" else int(pieces[1])
        except ValueError:
            raise DslParameterError(
                f"parameter {key!r} must contain integers or '*', got {value!r}",
                line=self.line,
            ) from None
        if low < 0 or (high != UNBOUNDED and high < low):
            raise DslParameterError(
                f"parameter {key!r} range {value!r} is invalid", line=self.line
            )
        return low, high

    def get_choices(self, key: str) -> list[str]:
        """Parse a ``|``-separated list of Python snippets."""
        value = self.raw.get(key)
        if value is None:
            raise DslParameterError(
                f"missing required parameter {key!r}", line=self.line
            )
        choices = [c.strip() for c in split_top_level(value, "|")]
        choices = [c for c in choices if c]
        if not choices:
            raise DslParameterError(
                f"parameter {key!r} lists no choices", line=self.line
            )
        return choices

    def require_known(self, allowed: set[str], directive: str) -> None:
        unknown = set(self.raw) - allowed
        if unknown:
            raise DslParameterError(
                f"unknown parameter(s) {sorted(unknown)} for ${directive}"
                f" (allowed: {sorted(allowed)})",
                line=self.line,
            )
