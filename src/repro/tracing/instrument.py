"""API instrumentation: record spans around selected methods (§IV-D).

``instrument_object`` wraps the public methods of a live object (e.g. the
etcdsim :class:`~repro.etcdsim.client.Client`) so that every invocation is
recorded as a span — the offline equivalent of ProFIPy's Zipkin
instrumentation of "selected RPC APIs in the target software".
"""

from __future__ import annotations

import functools

from repro.tracing.tracer import Tracer


def instrument_object(target: object, tracer: Tracer,
                      methods: list[str] | None = None) -> object:
    """Wrap ``target``'s methods in spans (in place); returns ``target``.

    ``methods`` defaults to every public callable attribute.  Wrapped
    methods keep their behaviour; exceptions are re-raised after marking
    the span as failed.
    """
    if methods is None:
        methods = [
            name for name in dir(target)
            if not name.startswith("_") and callable(getattr(target, name))
        ]
    for name in methods:
        original = getattr(target, name)
        if not callable(original):
            raise TypeError(f"{name!r} is not callable on {target!r}")

        def make_wrapper(bound, method_name):
            @functools.wraps(bound)
            def wrapper(*args, **kwargs):
                preview = ", ".join(
                    [repr(arg)[:40] for arg in args]
                    + [f"{key}={value!r}"[:40]
                       for key, value in kwargs.items()]
                )
                with tracer.span(method_name, args=preview):
                    return bound(*args, **kwargs)

            return wrapper

        setattr(target, name, make_wrapper(original, name))
    return target
