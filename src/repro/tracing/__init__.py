"""In-process distributed tracing (the Zipkin substitute, §IV-D)."""

from repro.tracing.instrument import instrument_object
from repro.tracing.tracer import Span, Tracer, load_spans

__all__ = ["Span", "Tracer", "instrument_object", "load_spans"]
