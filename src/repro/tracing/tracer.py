"""Distributed-tracing substrate: the Zipkin substitute (paper §IV-D).

ProFIPy "instruments selected RPC APIs in the target software, and records
their invocations during the experiment using the Zipkin distributed
tracing framework".  Offline, an in-process tracer records the same data —
timed spans with service/name/annotations — to a JSONL file per
experiment, which the visualization renders as timelines.
"""

from __future__ import annotations

import json
import threading
import time
import uuid
from contextlib import contextmanager
from dataclasses import dataclass, field
from pathlib import Path


@dataclass
class Span:
    """One timed operation (API call, request handling, ...)."""

    service: str
    name: str
    start: float
    end: float | None = None
    trace_id: str = ""
    span_id: str = field(default_factory=lambda: uuid.uuid4().hex[:16])
    parent_id: str | None = None
    status: str = "ok"
    annotations: dict[str, str] = field(default_factory=dict)

    @property
    def duration(self) -> float:
        if self.end is None:
            return 0.0
        return self.end - self.start

    def to_dict(self) -> dict:
        return {
            "service": self.service,
            "name": self.name,
            "start": self.start,
            "end": self.end,
            "trace_id": self.trace_id,
            "span_id": self.span_id,
            "parent_id": self.parent_id,
            "status": self.status,
            "annotations": dict(self.annotations),
        }

    @classmethod
    def from_dict(cls, data: dict) -> "Span":
        return cls(
            service=data["service"],
            name=data["name"],
            start=data["start"],
            end=data.get("end"),
            trace_id=data.get("trace_id", ""),
            span_id=data.get("span_id", ""),
            parent_id=data.get("parent_id"),
            status=data.get("status", "ok"),
            annotations=dict(data.get("annotations", {})),
        )


class Tracer:
    """Record spans, optionally persisting them to a JSONL sink."""

    def __init__(self, service: str, sink: str | Path | None = None,
                 clock=time.monotonic) -> None:
        self.service = service
        self.trace_id = uuid.uuid4().hex[:16]
        self._clock = clock
        self._sink = Path(sink) if sink is not None else None
        self._lock = threading.Lock()
        self._spans: list[Span] = []
        self._active = threading.local()

    @property
    def spans(self) -> list[Span]:
        with self._lock:
            return list(self._spans)

    @contextmanager
    def span(self, name: str, **annotations: str):
        """Context manager recording one span (exceptions mark it failed)."""
        parent = getattr(self._active, "span", None)
        span = Span(
            service=self.service,
            name=name,
            start=self._clock(),
            trace_id=self.trace_id,
            parent_id=parent.span_id if parent else None,
            annotations={key: str(value)
                         for key, value in annotations.items()},
        )
        self._active.span = span
        try:
            yield span
        except BaseException as error:
            span.status = f"error: {type(error).__name__}"
            raise
        finally:
            span.end = self._clock()
            self._active.span = parent
            self._record(span)

    def record(self, span: Span) -> None:
        """Add an externally-built span."""
        if not span.trace_id:
            span.trace_id = self.trace_id
        self._record(span)

    def _record(self, span: Span) -> None:
        with self._lock:
            self._spans.append(span)
            if self._sink is not None:
                with open(self._sink, "a", encoding="utf-8") as handle:
                    handle.write(json.dumps(span.to_dict()) + "\n")


def load_spans(path: str | Path) -> list[Span]:
    """Read spans back from a JSONL sink."""
    spans = []
    path = Path(path)
    if not path.exists():
        return spans
    for line in path.read_text(encoding="utf-8").splitlines():
        line = line.strip()
        if line:
            spans.append(Span.from_dict(json.loads(line)))
    return spans
