"""Content-addressed scan memoization (the as-a-Service fast path).

Two memoizers live here:

* :class:`ScanCache` — per-file scan results keyed by
  ``(sha256(source), faultload_digest)``.  Service-mode campaigns re-scan
  the same (unchanged) target trees over and over; with a persistent cache
  directory the second campaign skips the matcher entirely.  Entries store
  only file-independent match data (spec, ordinal, line span, snippet), so
  identical file contents share one entry regardless of path.
* :class:`MatchMemo` — a per-batch memo of pristine parse trees and their
  matches.  The mutator re-derives the ``ordinal``-th match from pristine
  source for every generated mutant; within a mutation batch (one campaign
  executor) the same ``(file, spec)`` pair recurs once per ordinal, and the
  memo replaces the repeated parse+backtracking-match with one cached match
  list plus a ``deepcopy`` translation onto a fresh tree.
"""

from __future__ import annotations

import ast
import copy
import hashlib
import os
import threading
from collections import OrderedDict
from pathlib import Path

from repro.common.fsutil import read_json, write_json
from repro.dsl.metamodel import MetaModel
from repro.dsl.parser import BugSpec
from repro.scanner.bindings import Bindings, CallCapture
from repro.scanner.matcher import Match, Matcher, pick_match


def source_digest(source: str) -> str:
    """Content address of one source file."""
    return hashlib.sha256(source.encode("utf-8")).hexdigest()


def faultload_digest(specs: "list[BugSpec] | list[MetaModel]") -> str:
    """Stable digest of an *ordered* faultload.

    Spec order matters: per-file points are emitted in model order, so two
    faultloads with the same specs in different orders are distinct.
    """
    digest = hashlib.sha256()
    for spec in specs:
        raw = spec.spec.raw if isinstance(spec, MetaModel) else spec.raw
        name = spec.name
        digest.update(name.encode("utf-8"))
        digest.update(b"\x00")
        digest.update(raw.encode("utf-8"))
        digest.update(b"\x01")
    return digest.hexdigest()


#: Bump when the entry schema changes; older disk entries become misses.
CACHE_FORMAT_VERSION = 1

_ROW_KEYS = {"spec_name", "ordinal", "lineno", "end_lineno", "snippet"}


def _valid_entry(entry) -> bool:
    """Schema check: malformed/old disk entries degrade to cache misses."""
    if not isinstance(entry, dict):
        return False
    if entry.get("version") != CACHE_FORMAT_VERSION:
        return False
    matches = entry.get("matches")
    if not isinstance(matches, list):
        return False
    return all(
        isinstance(row, dict) and _ROW_KEYS <= row.keys()
        for row in matches
    )


class ScanCache:
    """Memo of per-file scan results, optionally persisted to disk.

    The in-memory map is always consulted first; when ``cache_dir`` is set,
    misses fall back to a JSON entry on disk and stores write through.
    Entries are schema-versioned — anything malformed or from another
    format version is treated as a miss, never a crash.  The disk cache is
    pruned to ``max_disk_entries`` (oldest first) when the cache is
    opened, so long-lived service workspaces stay bounded.  Thread-safe
    (service jobs scan on worker threads).
    """

    def __init__(self, cache_dir: str | Path | None = None,
                 max_disk_entries: int = 4096) -> None:
        self.cache_dir = Path(cache_dir) if cache_dir else None
        self.max_disk_entries = max_disk_entries
        self._memory: dict[tuple[str, str], dict] = {}
        self._lock = threading.Lock()
        self.hits = 0
        self.misses = 0
        self._prune_disk()

    def _entry_path(self, source_sha: str, load_digest: str) -> Path:
        assert self.cache_dir is not None
        return self.cache_dir / f"{load_digest[:16]}-{source_sha}.json"

    def _prune_disk(self) -> None:
        """Drop the oldest disk entries beyond ``max_disk_entries``."""
        if self.cache_dir is None or not self.cache_dir.is_dir():
            return
        try:
            entries = sorted(
                self.cache_dir.glob("*.json"),
                key=lambda path: path.stat().st_mtime,
            )
        except OSError:
            return
        for path in entries[:max(0, len(entries) - self.max_disk_entries)]:
            try:
                path.unlink()
            except OSError:
                pass

    def lookup(self, source_sha: str, load_digest: str) -> dict | None:
        """Cached entry ``{"matches": [...], "error": str|None}`` or None."""
        key = (source_sha, load_digest)
        with self._lock:
            entry = self._memory.get(key)
        if entry is None and self.cache_dir is not None:
            path = self._entry_path(source_sha, load_digest)
            if path.exists():
                try:
                    entry = read_json(path)
                except (OSError, ValueError):
                    entry = None
                if entry is not None and not _valid_entry(entry):
                    entry = None
                if entry is not None:
                    with self._lock:
                        self._memory[key] = entry
                    try:
                        # Refresh recency so pruning is LRU, not FIFO:
                        # hot entries survive the max_disk_entries cap.
                        os.utime(path)
                    except OSError:
                        pass
        with self._lock:
            if entry is None:
                self.misses += 1
            else:
                self.hits += 1
        return entry

    def store(self, source_sha: str, load_digest: str, entry: dict) -> None:
        entry = {**entry, "version": CACHE_FORMAT_VERSION}
        key = (source_sha, load_digest)
        with self._lock:
            self._memory[key] = entry
        if self.cache_dir is not None:
            try:
                self.cache_dir.mkdir(parents=True, exist_ok=True)
                write_json(self._entry_path(source_sha, load_digest), entry)
            except OSError:
                pass  # persistence is best-effort; memory entry stands

    def stats(self) -> dict:
        return {"hits": self.hits, "misses": self.misses,
                "entries": len(self._memory)}


class MatchMemo:
    """Bounded memo of ``(source, spec) -> (pristine tree, matches)``.

    :meth:`take` hands out a *fresh* tree plus the requested match
    translated onto it, so callers may mutate freely.  The translation uses
    the ``deepcopy`` memo dictionary — ``memo[id(old_node)]`` is the copied
    node — to remap the match window and every tag binding in O(tree)
    instead of re-running the backtracking matcher.
    """

    def __init__(self, max_entries: int = 64) -> None:
        self.max_entries = max_entries
        self._entries: OrderedDict[tuple[str, str, str],
                                   tuple[ast.Module, list[Match]]]
        self._entries = OrderedDict()
        self._lock = threading.Lock()

    def _pristine(self, source: str,
                  model: MetaModel) -> tuple[ast.Module, list[Match]]:
        # The raw spec text is part of the key: two models may share a
        # name while matching different patterns (ScanCache digests
        # name+raw for the same reason).
        key = (source_digest(source), model.name, model.spec.raw)
        with self._lock:
            if key in self._entries:
                self._entries.move_to_end(key)
                return self._entries[key]
        tree = ast.parse(source)
        matches = Matcher(model).find_matches(tree)
        with self._lock:
            existing = self._entries.get(key)
            if existing is not None:
                # Another thread computed the same entry first; hand out
                # that one so every caller shares a single pristine tree.
                self._entries.move_to_end(key)
                return existing
            self._entries[key] = (tree, matches)
            self._entries.move_to_end(key)
            while len(self._entries) > self.max_entries:
                self._entries.popitem(last=False)
        return tree, matches

    def prime(self, source: str, model: MetaModel) -> int:
        """Parse and match now, serially, so later takes are cache hits.

        The batched mutant pre-generation calls this implicitly by
        processing requests grouped per ``(file, spec)``; priming from a
        single thread removes the duplicated parse+match work that
        concurrent first-touches would otherwise race to do.
        """
        return len(self._pristine(source, model)[1])

    def count(self, source: str, model: MetaModel) -> int:
        """Number of matches of ``model`` in ``source`` (memoized)."""
        return len(self._pristine(source, model)[1])

    def take(self, source: str, model: MetaModel,
             ordinal: int) -> tuple[ast.Module, Match]:
        """A fresh tree plus the ``ordinal``-th match located in it."""
        tree, matches = self._pristine(source, model)
        match = pick_match(matches, model.name, ordinal)
        node_map: dict[int, object] = {}
        fresh_tree = copy.deepcopy(tree, node_map)
        fresh = Match(
            owner=node_map[id(match.owner)],
            field=match.field,
            start=match.start,
            end=match.end,
            bindings=_remap_bindings(match.bindings, node_map),
            spec_name=match.spec_name,
        )
        return fresh_tree, fresh


def _remap_bindings(bindings: Bindings, node_map: dict) -> Bindings:
    remapped = Bindings()
    for tag in bindings.tags():
        remapped.bind(tag, _remap_value(bindings.get(tag), node_map))
    return remapped


def _remap_value(value, node_map: dict):
    if isinstance(value, ast.AST):
        return node_map[id(value)]
    if isinstance(value, CallCapture):
        return CallCapture(
            call=node_map[id(value.call)],
            wildcards=[[node_map[id(arg)] for arg in group]
                       for group in value.wildcards],
            absorbed_keywords=[node_map[id(keyword)]
                               for keyword in value.absorbed_keywords],
            containing_stmt=(node_map[id(value.containing_stmt)]
                             if value.containing_stmt is not None else None),
        )
    if isinstance(value, list):
        return [node_map[id(item)] if isinstance(item, ast.AST) else item
                for item in value]
    return value  # anchor tuples and other scalars pass through
