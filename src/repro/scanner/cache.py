"""Content-addressed scan memoization (the as-a-Service fast path).

Two memoizers live here:

* :class:`ScanCache` — per-file scan results keyed by
  ``(sha256(source), faultload_digest)``, plus two whole-tree layers that
  make re-campaigns over mostly-unchanged trees cost O(changed files):

  - a **stat manifest** per scan root mapping absolute path to
    ``(size, mtime_ns, sha)``, so unchanged files are recognized from a
    single ``stat`` without being read or hashed at all;
  - a **tree manifest** keyed by ``(tree_digest, faultload_digest)``,
    where the tree digest is the canonical-JSON sha256 of the
    ``{relative path: source sha}`` map (the same digest discipline as
    the executor's ``ImageManifest``) — a hit serves the *entire* scan
    from one entry.

  Service-mode campaigns re-scan the same (unchanged) target trees over
  and over; with a persistent cache directory the second campaign skips
  the matcher, the hashing, and the file reads entirely.  Entries store
  only file-independent match data (spec, ordinal, line span, snippet),
  so identical file contents share one entry regardless of path.  The
  in-memory map is LRU-bounded (``max_memory_entries``) so long-lived
  service workers stay bounded too.
* :class:`MatchMemo` — a per-batch memo of pristine parse trees and their
  matches, keyed per source content with all per-spec match lists hanging
  off one shared tree (one parse per file, however many specs).  The
  span-patching mutant path only needs read access (:meth:`peek`);
  :meth:`take` still hands out a ``deepcopy``-translated private tree for
  the fallback path, and :meth:`take_windows` gives the coverage
  instrumenter every requested window on a single fresh tree.
"""

from __future__ import annotations

import ast
import copy
import hashlib
import json
import os
import threading
from collections import OrderedDict
from pathlib import Path

from repro.common.fsutil import read_json, write_json
from repro.dsl.metamodel import MetaModel
from repro.dsl.parser import BugSpec
from repro.scanner.bindings import Bindings, CallCapture
from repro.scanner.matcher import Match, Matcher, pick_match


def source_digest(source: str) -> str:
    """Content address of one source file."""
    return hashlib.sha256(source.encode("utf-8")).hexdigest()


def faultload_digest(specs: "list[BugSpec] | list[MetaModel]") -> str:
    """Stable digest of an *ordered* faultload.

    Spec order matters: per-file points are emitted in model order, so two
    faultloads with the same specs in different orders are distinct.
    """
    digest = hashlib.sha256()
    for spec in specs:
        raw = spec.spec.raw if isinstance(spec, MetaModel) else spec.raw
        name = spec.name
        digest.update(name.encode("utf-8"))
        digest.update(b"\x00")
        digest.update(raw.encode("utf-8"))
        digest.update(b"\x01")
    return digest.hexdigest()


def tree_digest_of(files: "dict[str, str]") -> str:
    """Content address of a whole tree: ``{relative path: source sha}``.

    Canonical sorted JSON hashed with sha256 — the ``ImageManifest``
    discipline — so any file added, removed, renamed, or edited changes
    the digest, and nothing else does.
    """
    canonical = json.dumps(sorted(files.items()), separators=(",", ":"))
    return hashlib.sha256(canonical.encode("utf-8")).hexdigest()


#: Bump when the entry schema changes; older disk entries become misses.
CACHE_FORMAT_VERSION = 1

#: Bump when the tree-manifest schema changes (independent of the
#: per-file entry version it nests).
TREE_FORMAT_VERSION = 1

_ROW_KEYS = {"spec_name", "ordinal", "lineno", "end_lineno", "snippet"}

_STAT_KEYS = {"size", "mtime_ns", "sha"}


def _valid_entry(entry) -> bool:
    """Schema check: malformed/old disk entries degrade to cache misses."""
    if not isinstance(entry, dict):
        return False
    if entry.get("version") != CACHE_FORMAT_VERSION:
        return False
    matches = entry.get("matches")
    if not isinstance(matches, list):
        return False
    return all(
        isinstance(row, dict) and _ROW_KEYS <= row.keys()
        for row in matches
    )


def _valid_tree_entry(entry) -> bool:
    if not isinstance(entry, dict):
        return False
    if entry.get("version") != TREE_FORMAT_VERSION:
        return False
    files = entry.get("files")
    if not isinstance(files, dict):
        return False
    return all(
        isinstance(rel, str) and _valid_entry(file_entry)
        for rel, file_entry in files.items()
    )


def _valid_stat_manifest(entry) -> bool:
    if not isinstance(entry, dict):
        return False
    if entry.get("version") != CACHE_FORMAT_VERSION:
        return False
    files = entry.get("files")
    if not isinstance(files, dict):
        return False
    return all(
        isinstance(path, str) and isinstance(record, dict)
        and _STAT_KEYS <= record.keys()
        for path, record in files.items()
    )


class ScanCache:
    """Memo of per-file scan results, optionally persisted to disk.

    The in-memory map is always consulted first; when ``cache_dir`` is set,
    misses fall back to a JSON entry on disk and stores write through.
    Entries are schema-versioned — anything malformed or from another
    format version is treated as a miss, never a crash.  Both the disk
    cache (``max_disk_entries``, pruned LRU when the cache is opened) and
    the in-memory map (``max_memory_entries``, evicted LRU on insert) are
    bounded, so long-lived service workspaces and workers stay bounded.
    Thread-safe (service jobs scan on worker threads).

    Counters: ``hits``/``misses`` count per-file entry consultations (a
    whole-tree hit counts once per file it serves); ``tree_hits``/
    ``tree_misses`` count tree-manifest consultations; ``files_read`` and
    ``stat_hits`` count how many files a scan actually read versus
    recognized as unchanged from a single ``stat``.
    """

    def __init__(self, cache_dir: str | Path | None = None,
                 max_disk_entries: int = 4096,
                 max_memory_entries: int = 4096) -> None:
        self.cache_dir = Path(cache_dir) if cache_dir else None
        self.max_disk_entries = max_disk_entries
        self.max_memory_entries = max_memory_entries
        self._memory: OrderedDict[tuple[str, str], dict] = OrderedDict()
        self._tree_memory: OrderedDict[tuple[str, str], dict] = OrderedDict()
        self._stat_memory: dict[str, dict] = {}
        self._lock = threading.Lock()
        self.hits = 0
        self.misses = 0
        self.tree_hits = 0
        self.tree_misses = 0
        self.files_read = 0
        self.stat_hits = 0
        self._prune_disk()

    def _entry_path(self, source_sha: str, load_digest: str) -> Path:
        assert self.cache_dir is not None
        return self.cache_dir / f"{load_digest[:16]}-{source_sha}.json"

    def _tree_path(self, tree_digest: str, load_digest: str) -> Path:
        assert self.cache_dir is not None
        return self.cache_dir / f"tree-{load_digest[:16]}-{tree_digest}.json"

    def _stat_path(self, root_key: str) -> Path:
        assert self.cache_dir is not None
        token = hashlib.sha256(root_key.encode("utf-8")).hexdigest()[:16]
        return self.cache_dir / f"statmanifest-{token}.json"

    def _prune_disk(self) -> None:
        """Drop the oldest disk entries beyond ``max_disk_entries``.

        Stat manifests are exempt: there is one small manifest per scan
        root (not one per file), and it is what keeps re-scans from
        reading every file.
        """
        if self.cache_dir is None or not self.cache_dir.is_dir():
            return
        try:
            entries = sorted(
                (path for path in self.cache_dir.glob("*.json")
                 if not path.name.startswith("statmanifest-")),
                key=lambda path: path.stat().st_mtime,
            )
        except OSError:
            return
        for path in entries[:max(0, len(entries) - self.max_disk_entries)]:
            try:
                path.unlink()
            except OSError:
                pass

    def _remember(self, store: OrderedDict, key, entry,
                  cap: int | None = None) -> None:
        """Insert with LRU recency and eviction (caller holds no lock)."""
        cap = cap if cap is not None else self.max_memory_entries
        with self._lock:
            store[key] = entry
            store.move_to_end(key)
            while len(store) > cap:
                store.popitem(last=False)

    # -- per-file entries -------------------------------------------------------

    def lookup(self, source_sha: str, load_digest: str) -> dict | None:
        """Cached entry ``{"matches": [...], "error": str|None}`` or None."""
        key = (source_sha, load_digest)
        with self._lock:
            entry = self._memory.get(key)
            if entry is not None:
                self._memory.move_to_end(key)
        if entry is None and self.cache_dir is not None:
            path = self._entry_path(source_sha, load_digest)
            if path.exists():
                try:
                    entry = read_json(path)
                except (OSError, ValueError):
                    entry = None
                if entry is not None and not _valid_entry(entry):
                    entry = None
                if entry is not None:
                    self._remember(self._memory, key, entry)
                    try:
                        # Refresh recency so pruning is LRU, not FIFO:
                        # hot entries survive the max_disk_entries cap.
                        os.utime(path)
                    except OSError:
                        pass
        with self._lock:
            if entry is None:
                self.misses += 1
            else:
                self.hits += 1
        return entry

    def store(self, source_sha: str, load_digest: str, entry: dict) -> None:
        entry = {**entry, "version": CACHE_FORMAT_VERSION}
        self._remember(self._memory, (source_sha, load_digest), entry)
        if self.cache_dir is not None:
            try:
                self.cache_dir.mkdir(parents=True, exist_ok=True)
                write_json(self._entry_path(source_sha, load_digest), entry)
            except OSError:
                pass  # persistence is best-effort; memory entry stands

    # -- tree manifests ---------------------------------------------------------

    def lookup_tree(self, tree_digest: str,
                    load_digest: str) -> dict | None:
        """Whole-tree entry ``{"files": {rel: per-file entry}}`` or None."""
        key = (tree_digest, load_digest)
        with self._lock:
            entry = self._tree_memory.get(key)
            if entry is not None:
                self._tree_memory.move_to_end(key)
        if entry is None and self.cache_dir is not None:
            path = self._tree_path(tree_digest, load_digest)
            if path.exists():
                try:
                    entry = read_json(path)
                except (OSError, ValueError):
                    entry = None
                if entry is not None and not _valid_tree_entry(entry):
                    entry = None
                if entry is not None:
                    self._remember(self._tree_memory, key, entry, cap=16)
                    try:
                        os.utime(path)
                    except OSError:
                        pass
        with self._lock:
            if entry is None:
                self.tree_misses += 1
            else:
                self.tree_hits += 1
        return entry

    def store_tree(self, tree_digest: str, load_digest: str,
                   files: "dict[str, dict]") -> None:
        entry = {
            "version": TREE_FORMAT_VERSION,
            "files": {rel: {**file_entry, "version": CACHE_FORMAT_VERSION}
                      for rel, file_entry in files.items()},
        }
        self._remember(self._tree_memory, (tree_digest, load_digest), entry,
                       cap=16)
        if self.cache_dir is not None:
            try:
                self.cache_dir.mkdir(parents=True, exist_ok=True)
                write_json(self._tree_path(tree_digest, load_digest), entry)
            except OSError:
                pass

    # -- stat manifests ---------------------------------------------------------

    def load_stat_manifest(self, root: str | Path) -> dict:
        """``{absolute path: {size, mtime_ns, sha}}`` for ``root``, or {}."""
        root_key = os.path.abspath(str(root))
        with self._lock:
            manifest = self._stat_memory.get(root_key)
            if manifest is not None:
                return dict(manifest)
        if self.cache_dir is None:
            return {}
        path = self._stat_path(root_key)
        if not path.exists():
            return {}
        try:
            entry = read_json(path)
        except (OSError, ValueError):
            return {}
        if not _valid_stat_manifest(entry):
            return {}
        manifest = entry["files"]
        with self._lock:
            self._stat_memory[root_key] = dict(manifest)
        return manifest

    def save_stat_manifest(self, root: str | Path,
                           manifest: "dict[str, dict]") -> None:
        root_key = os.path.abspath(str(root))
        with self._lock:
            self._stat_memory[root_key] = dict(manifest)
        if self.cache_dir is not None:
            try:
                self.cache_dir.mkdir(parents=True, exist_ok=True)
                write_json(self._stat_path(root_key), {
                    "version": CACHE_FORMAT_VERSION,
                    "files": manifest,
                })
            except OSError:
                pass

    # -- counters ---------------------------------------------------------------

    def note_hits(self, count: int) -> None:
        """Count ``count`` per-file results served (tree fast path)."""
        with self._lock:
            self.hits += count

    def note_read(self, count: int = 1) -> None:
        with self._lock:
            self.files_read += count

    def note_stat_hit(self, count: int = 1) -> None:
        with self._lock:
            self.stat_hits += count

    def stats(self) -> dict:
        with self._lock:
            return {
                "hits": self.hits,
                "misses": self.misses,
                "entries": len(self._memory),
                "tree_hits": self.tree_hits,
                "tree_misses": self.tree_misses,
                "files_read": self.files_read,
                "stat_hits": self.stat_hits,
            }


class _MemoEntry:
    """One memoized source: a shared pristine tree plus per-spec matches."""

    __slots__ = ("tree", "matches")

    def __init__(self, tree: ast.Module) -> None:
        self.tree = tree
        #: ``(spec name, raw spec text) -> match list`` — the raw text is
        #: part of the key because two specs may share a name while
        #: matching different patterns (ScanCache digests name+raw for
        #: the same reason).
        self.matches: dict[tuple[str, str], list[Match]] = {}


class MatchMemo:
    """Bounded memo of ``source -> (pristine tree, per-spec matches)``.

    One entry per source content; every spec's match list hangs off the
    same shared tree, so a file hit by many specs is parsed exactly once.
    :meth:`peek` exposes the shared tree read-only (the span-patching
    path never mutates it); :meth:`take` hands out a *fresh* tree plus
    the requested match translated onto it, so callers may mutate freely.
    The translation uses the ``deepcopy`` memo dictionary —
    ``memo[id(old_node)]`` is the copied node — to remap the match window
    and every tag binding in O(tree) instead of re-running the
    backtracking matcher.
    """

    def __init__(self, max_entries: int = 64) -> None:
        self.max_entries = max_entries
        self._entries: OrderedDict[str, _MemoEntry] = OrderedDict()
        self._lock = threading.Lock()

    def _entry(self, source: str) -> _MemoEntry:
        key = source_digest(source)
        with self._lock:
            entry = self._entries.get(key)
            if entry is not None:
                self._entries.move_to_end(key)
                return entry
        tree = ast.parse(source)
        entry = _MemoEntry(tree)
        with self._lock:
            existing = self._entries.get(key)
            if existing is not None:
                # Another thread parsed the same source first; hand out
                # that entry so every caller shares a single pristine tree.
                self._entries.move_to_end(key)
                return existing
            self._entries[key] = entry
            self._entries.move_to_end(key)
            while len(self._entries) > self.max_entries:
                self._entries.popitem(last=False)
        return entry

    def _matches(self, entry: _MemoEntry, model: MetaModel) -> list[Match]:
        key = (model.name, model.spec.raw)
        with self._lock:
            matches = entry.matches.get(key)
        if matches is not None:
            return matches
        matches = Matcher(model).find_matches(entry.tree)
        with self._lock:
            # Existing wins: concurrent first-touches must agree on one
            # match list (matching is deterministic, but identity matters
            # for downstream node remapping).
            return entry.matches.setdefault(key, matches)

    def _pristine(self, source: str,
                  model: MetaModel) -> tuple[ast.Module, list[Match]]:
        entry = self._entry(source)
        return entry.tree, self._matches(entry, model)

    def prime(self, source: str, model: MetaModel) -> int:
        """Parse and match now, serially, so later takes are cache hits.

        The batched mutant pre-generation calls this implicitly by
        processing requests grouped per ``(file, spec)``; priming from a
        single thread removes the duplicated parse+match work that
        concurrent first-touches would otherwise race to do.
        """
        return len(self._pristine(source, model)[1])

    def count(self, source: str, model: MetaModel) -> int:
        """Number of matches of ``model`` in ``source`` (memoized)."""
        return len(self._pristine(source, model)[1])

    def peek(self, source: str, model: MetaModel,
             ordinal: int) -> tuple[ast.Module, Match]:
        """The *shared* pristine tree plus the ``ordinal``-th match.

        Callers must treat both as read-only: the tree is handed to every
        other consumer of this source.  The span-patching mutant path
        only reads positions and unparses, so it peeks instead of taking.
        """
        tree, matches = self._pristine(source, model)
        return tree, pick_match(matches, model.name, ordinal)

    def take(self, source: str, model: MetaModel,
             ordinal: int) -> tuple[ast.Module, Match]:
        """A fresh tree plus the ``ordinal``-th match located in it."""
        tree, matches = self._pristine(source, model)
        match = pick_match(matches, model.name, ordinal)
        node_map: dict[int, object] = {}
        fresh_tree = copy.deepcopy(tree, node_map)
        fresh = Match(
            owner=node_map[id(match.owner)],
            field=match.field,
            start=match.start,
            end=match.end,
            bindings=_remap_bindings(match.bindings, node_map),
            spec_name=match.spec_name,
        )
        return fresh_tree, fresh

    def take_windows(
        self, source: str, targets: "list[tuple[MetaModel, int]]",
    ) -> tuple[ast.Module, list[Match]]:
        """One fresh tree plus every ``(model, ordinal)`` window on it.

        The coverage instrumenter needs many windows on a single mutable
        tree; this costs one ``deepcopy`` total instead of one per window,
        and the backtracking matcher runs at most once per distinct spec.
        Bindings are not remapped — probe insertion only needs the window.
        """
        entry = self._entry(source)
        picked = [
            pick_match(self._matches(entry, model), model.name, ordinal)
            for model, ordinal in targets
        ]
        node_map: dict[int, object] = {}
        fresh_tree = copy.deepcopy(entry.tree, node_map)
        windows = [
            Match(
                owner=node_map[id(match.owner)],
                field=match.field,
                start=match.start,
                end=match.end,
                bindings=Bindings(),
                spec_name=match.spec_name,
            )
            for match in picked
        ]
        return fresh_tree, windows


def _remap_bindings(bindings: Bindings, node_map: dict) -> Bindings:
    remapped = Bindings()
    for tag in bindings.tags():
        remapped.bind(tag, _remap_value(bindings.get(tag), node_map))
    return remapped


def _remap_value(value, node_map: dict):
    if isinstance(value, ast.AST):
        return node_map[id(value)]
    if isinstance(value, CallCapture):
        return CallCapture(
            call=node_map[id(value.call)],
            wildcards=[[node_map[id(arg)] for arg in group]
                       for group in value.wildcards],
            absorbed_keywords=[node_map[id(keyword)]
                               for keyword in value.absorbed_keywords],
            containing_stmt=(node_map[id(value.containing_stmt)]
                             if value.containing_stmt is not None else None),
        )
    if isinstance(value, list):
        return [node_map[id(item)] if isinstance(item, ast.AST) else item
                for item in value]
    return value  # anchor tuples and other scalars pass through
