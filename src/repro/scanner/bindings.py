"""Match bindings: what each tagged directive captured.

The ``{tag=...}`` / ``#tag`` syntax lets a spec label parts of the code
pattern and reuse them in the replacement (paper §III).  During matching,
each tag is bound to the target-AST material it matched:

* ``$BLOCK`` tags bind a list of statements;
* ``$EXPR`` / ``$STRING`` / ``$NUM`` / ``$VAR`` tags bind one expression;
* ``$CALL`` tags bind a :class:`CallCapture` — the call node plus what each
  ``...`` wildcard absorbed, so the replacement can rebuild the call with
  some arguments transformed and the rest passed through.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field


@dataclass
class CallCapture:
    """Everything a ``$CALL`` directive captured from one matched call."""

    call: ast.Call
    #: Positional arguments absorbed by each ``...`` in the pattern, in order.
    wildcards: list[list[ast.expr]] = field(default_factory=list)
    #: Keyword arguments not explicitly matched by the pattern.
    absorbed_keywords: list[ast.keyword] = field(default_factory=list)
    #: For ``ctx=any`` matches: the whole statement containing the call.
    containing_stmt: ast.stmt | None = None


#: A binding value: statements, one expression, or a call capture.
BoundValue = "list[ast.stmt] | ast.expr | CallCapture"


class Bindings:
    """Tag → captured material for one match attempt.

    Backtracking in the sequence matcher works on cheap dict copies via
    :meth:`snapshot` / :meth:`adopt`.
    """

    def __init__(self, values: dict | None = None) -> None:
        self._values: dict[str, object] = dict(values or {})

    def bind(self, tag: str | None, value: object) -> None:
        if tag is not None:
            self._values[tag] = value

    def get(self, tag: str) -> object | None:
        return self._values.get(tag)

    def has(self, tag: str) -> bool:
        return tag in self._values

    def snapshot(self) -> "Bindings":
        return Bindings(self._values)

    def adopt(self, other: "Bindings") -> None:
        self._values = dict(other._values)

    def tags(self) -> list[str]:
        return sorted(self._values)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Bindings({self.tags()})"
