"""Compile-time prefilters for the scan engine (§V-D scalability).

Scanning is ``O(specs x files)``: with the paper's 120-pattern faultloads
most (spec, file) pairs can never match — a spec targeting
``utils.execute`` is irrelevant to a file that never calls anything named
``execute``.  This module derives, at spec-compile time, a cheap
:class:`SpecRequirements` *fingerprint requirement* from the code pattern:

* the AST node types any matching file must contain;
* the literal (non-wildcard) dotted-name segments of ``$CALL{name=glob}``
  globs and of concrete calls in the pattern;
* the string/number constants the pattern pins exactly.

At scan time one :class:`FileFingerprint` is computed per file in a single
AST walk, and every spec whose requirements the fingerprint cannot satisfy
is skipped without running the matcher.  The filter is *sound*: it only
skips specs that provably have zero matches, so the indexed engine returns
byte-identical results to the naive matcher.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field

from repro.dsl.directives import DirectiveKind
from repro.dsl.metamodel import (
    MetaModel,
    is_ellipsis_expr,
    is_ellipsis_stmt,
)
from repro.scanner.matcher import _IGNORED_FIELDS, call_name

#: Characters that make a glob segment non-literal.
_GLOB_CHARS = set("*?[")


def literal_glob_segments(pattern: str) -> frozenset[str]:
    """The dotted-name segments of a name glob that are fully literal.

    ``utils.execute`` -> {utils, execute}; ``delete_*`` -> {} (wildcard);
    ``nova.*.delete`` -> {nova, delete}.  Regex patterns (``/…/``) yield no
    requirements, and so does any glob containing a bracket class — a
    ``[.]`` can match a literal dot, so splitting such a pattern on ``.``
    would fabricate bogus segments.  Any call whose dotted name matches the
    glob must contain each literal segment as a complete segment, because
    ``fnmatch`` can only satisfy a literal, dot-delimited chunk of the
    pattern with that exact text (``*`` may absorb dots, but the literal
    segment stays delimited).
    """
    if pattern.startswith("/") and pattern.endswith("/") and len(pattern) > 1:
        return frozenset()
    if "[" in pattern:
        return frozenset()
    return frozenset(
        segment
        for segment in pattern.split(".")
        if segment and not _GLOB_CHARS.intersection(segment)
    )


@dataclass(frozen=True)
class SpecRequirements:
    """What any file matched by one spec must minimally contain."""

    node_types: frozenset[str] = frozenset()
    call_segments: frozenset[str] = frozenset()
    constants: frozenset = frozenset()

    def satisfied_by(self, fingerprint: "FileFingerprint") -> bool:
        """True when ``fingerprint``'s file could possibly match."""
        return (
            self.node_types <= fingerprint.node_types
            and self.call_segments <= fingerprint.call_segments
            and self.constants <= fingerprint.constants
        )


@dataclass
class FileFingerprint:
    """Cheap per-file summary checked against :class:`SpecRequirements`.

    Built in the same single ``ast.walk`` that collects the statement lists
    for the :class:`~repro.scanner.scan.FileIndex`.
    """

    node_types: set[str] = field(default_factory=set)
    call_segments: set[str] = field(default_factory=set)
    constants: set = field(default_factory=set)

    def add_node(self, node: ast.AST) -> None:
        """Record one AST node (called once per node during the walk)."""
        self.node_types.add(type(node).__name__)
        if isinstance(node, ast.Call):
            # Same dotted-name rules as the matcher: segment requirements
            # stay sound against whatever names the matcher would see.
            dotted = call_name(node.func)
            if dotted is not None:
                self.call_segments.update(dotted.split("."))
        elif isinstance(node, ast.Constant):
            self.constants.add(node.value)

    @classmethod
    def from_tree(cls, tree: ast.AST) -> "FileFingerprint":
        fingerprint = cls()
        for node in ast.walk(tree):
            fingerprint.add_node(node)
        return fingerprint


class _RequirementCollector:
    """Walk a compiled pattern, mirroring the matcher's dispatch rules."""

    def __init__(self, model: MetaModel) -> None:
        self.model = model
        self.node_types: set[str] = set()
        self.call_segments: set[str] = set()
        self.constants: set = set()

    def collect(self) -> SpecRequirements:
        self._stmt_list(self.model.pattern_stmts)
        return SpecRequirements(
            node_types=frozenset(self.node_types),
            call_segments=frozenset(self.call_segments),
            constants=frozenset(self.constants),
        )

    # -- statement level -----------------------------------------------------

    def _stmt_list(self, stmts: list[ast.stmt]) -> None:
        for stmt in stmts:
            directive = self.model.directive_of_stmt(stmt)
            if directive is not None:
                if directive.kind is DirectiveKind.CALL:
                    # A bare $CALL statement needs a matching call; in
                    # ctx=stmt form the call is the whole Expr statement.
                    self.node_types.add("Call")
                    if directive.call_context != "any":
                        self.node_types.add("Expr")
                    self.call_segments |= literal_glob_segments(
                        directive.name_pattern
                    )
                # $BLOCK matches any run of statements: no requirement.
                continue
            if is_ellipsis_stmt(stmt):
                continue
            self._node(stmt)

    # -- expression / node level ---------------------------------------------

    def _node(self, node: ast.AST) -> None:
        directive = self.model.directive_of_name(node)
        if directive is not None:
            self._directive(directive)
            return
        if isinstance(node, ast.Call):
            directive = self.model.directive_of_call(node)
            if directive is not None:
                # $CALL{name=glob}(args...): a Call with a matching name
                # whose concrete argument patterns must also match.
                self.node_types.add("Call")
                self.call_segments |= literal_glob_segments(
                    directive.name_pattern
                )
                for arg in node.args:
                    if not is_ellipsis_expr(arg):
                        self._node(arg)
                for keyword in node.keywords:
                    self._node(keyword.value)
                return
        if is_ellipsis_expr(node):
            return
        self.node_types.add(type(node).__name__)
        if isinstance(node, ast.Constant):
            self.constants.add(node.value)
            return
        if isinstance(node, ast.Call):
            self.call_segments |= self._concrete_call_segments(node.func)
        for fname, value in ast.iter_fields(node):
            if fname in _IGNORED_FIELDS:
                continue
            if isinstance(value, list):
                if value and all(isinstance(item, ast.stmt) for item in value):
                    self._stmt_list(value)
                else:
                    for item in value:
                        if isinstance(item, ast.AST):
                            if not is_ellipsis_expr(item):
                                self._node(item)
            elif isinstance(value, ast.AST):
                self._node(value)

    def _directive(self, directive) -> None:
        kind = directive.kind
        if kind is DirectiveKind.CALL:
            self.node_types.add("Call")
            self.call_segments |= literal_glob_segments(directive.name_pattern)
        elif kind is DirectiveKind.VAR:
            self.node_types.add("Name")
        elif kind is DirectiveKind.EXPR:
            if directive.var_pattern is not None:
                self.node_types.add("Name")
        elif kind is DirectiveKind.STRING:
            self.node_types.add("Constant")
            value = directive.value_pattern
            literal = (
                not _GLOB_CHARS.intersection(value)
                and not (value.startswith("/") and value.endswith("/")
                         and len(value) > 1)
            )
            if literal:
                self.constants.add(value)
        elif kind is DirectiveKind.NUM:
            self.node_types.add("Constant")
        # $EXPR and $BLOCK impose nothing the file could lack.

    def _concrete_call_segments(self, func: ast.expr) -> set[str]:
        """Required segments of a concrete (non-directive) call target.

        The attribute chain attrs are always forced onto the target's
        dotted name; the base name counts only when it is a concrete
        ``Name`` (a placeholder base can match any object).
        """
        segments: set[str] = set()
        node = func
        while isinstance(node, ast.Attribute):
            segments.add(node.attr)
            node = node.value
        if (
            isinstance(node, ast.Name)
            and self.model.directive_of_name(node) is None
        ):
            segments.add(node.id)
        return segments


def derive_requirements(model: MetaModel) -> SpecRequirements:
    """Derive the fingerprint requirement of one compiled spec."""
    return _RequirementCollector(model).collect()
