"""Source-code scanner: find every injection point in a project (§IV-A).

``scan_tree`` walks a source tree (or a single file), parses each Python
file once, and runs every compiled bug specification over it.  Scanning is
"embarrassingly parallel" across files (paper §V-D); pass ``jobs > 1`` to
fan out over processes.
"""

from __future__ import annotations

import ast
from concurrent.futures import ProcessPoolExecutor
from dataclasses import dataclass, field
from pathlib import Path

from repro.common.fsutil import iter_python_files
from repro.common.textutil import truncate
from repro.dsl.compiler import compile_spec
from repro.dsl.metamodel import MetaModel
from repro.dsl.parser import BugSpec
from repro.scanner.matcher import Match, Matcher
from repro.scanner.points import InjectionPoint, component_of


@dataclass
class ScanResult:
    """Outcome of scanning a source tree with a set of bug specs."""

    points: list[InjectionPoint] = field(default_factory=list)
    files_scanned: int = 0
    parse_errors: dict[str, str] = field(default_factory=dict)

    def by_spec(self) -> dict[str, list[InjectionPoint]]:
        grouped: dict[str, list[InjectionPoint]] = {}
        for point in self.points:
            grouped.setdefault(point.spec_name, []).append(point)
        return grouped

    def merge(self, other: "ScanResult") -> None:
        self.points.extend(other.points)
        self.files_scanned += other.files_scanned
        self.parse_errors.update(other.parse_errors)


def match_source(source: str, model: MetaModel) -> list[Match]:
    """All matches of one meta-model in a source string."""
    tree = ast.parse(source)
    return Matcher(model).find_matches(tree)


def nth_match(source: str, model: MetaModel, ordinal: int) -> Match:
    """Re-locate the ``ordinal``-th match of ``model`` in ``source``.

    Used by the mutator: injection points store (spec, file, ordinal), and
    mutation re-parses the pristine file, so matches must be re-derived
    deterministically.
    """
    matches = match_source(source, model)
    if ordinal >= len(matches):
        raise IndexError(
            f"spec {model.name!r} has {len(matches)} matches, "
            f"ordinal {ordinal} requested"
        )
    return matches[ordinal]


def scan_source(
    source: str, models: list[MetaModel], file: str = "<string>"
) -> list[InjectionPoint]:
    """Scan one source string with every meta-model."""
    tree = ast.parse(source)
    points: list[InjectionPoint] = []
    component = component_of(file)
    for model in models:
        matches = Matcher(model).find_matches(tree)
        for ordinal, match in enumerate(matches):
            snippet = "; ".join(
                ast.unparse(stmt).splitlines()[0] for stmt in match.stmts[:3]
            )
            points.append(
                InjectionPoint(
                    spec_name=model.name,
                    file=file,
                    ordinal=ordinal,
                    lineno=match.lineno,
                    end_lineno=match.end_lineno,
                    snippet=truncate(snippet, 120),
                    component=component,
                )
            )
    return points


def scan_file(
    path: str | Path, models: list[MetaModel], root: str | Path | None = None
) -> ScanResult:
    """Scan one file; unparseable files are recorded, not fatal."""
    path = Path(path)
    rel = str(path.relative_to(root)) if root else path.name
    result = ScanResult(files_scanned=1)
    try:
        source = path.read_text(encoding="utf-8", errors="replace")
        result.points = scan_source(source, models, file=rel)
    except SyntaxError as exc:
        result.parse_errors[rel] = f"{exc.msg} (line {exc.lineno})"
    return result


def scan_tree(
    root: str | Path,
    specs: list[BugSpec],
    jobs: int = 1,
) -> ScanResult:
    """Scan every Python file under ``root`` with every spec.

    ``jobs > 1`` distributes files over a process pool; each worker compiles
    the specs once.  Results are returned in deterministic file order.
    """
    root = Path(root)
    files = sorted(iter_python_files(root))
    scan_root = root if root.is_dir() else root.parent
    if jobs <= 1 or len(files) <= 1:
        models = [compile_spec(spec) for spec in specs]
        total = ScanResult()
        for path in files:
            total.merge(scan_file(path, models, root=scan_root))
        return total

    total = ScanResult()
    with ProcessPoolExecutor(max_workers=jobs) as pool:
        futures = [
            pool.submit(_scan_file_task, str(path), specs, str(scan_root))
            for path in files
        ]
        for future in futures:
            total.merge(future.result())
    return total


def _scan_file_task(path: str, specs: list[BugSpec], root: str) -> ScanResult:
    models = [compile_spec(spec) for spec in specs]
    return scan_file(path, models, root=root)
