"""Source-code scanner: find every injection point in a project (§IV-A).

The scan hot path is an *indexed engine* (§V-D scalability):

1. each file is parsed once and summarized by a :class:`FileIndex` — the
   statement lists the matcher windows over plus a
   :class:`~repro.scanner.prefilter.FileFingerprint`, both collected in a
   single AST walk;
2. every spec compiles to a :class:`~repro.scanner.prefilter.SpecRequirements`
   prefilter; specs the fingerprint cannot satisfy are skipped without
   running the matcher, which eliminates most ``specs x files`` work for
   API-glob faultloads;
3. ``jobs > 1`` fans files out over *warm* worker processes — specs are
   compiled once per worker (``ProcessPoolExecutor(initializer=...)``) and
   files are submitted in chunks, with a deterministic merge order;
4. an optional :class:`~repro.scanner.cache.ScanCache` memoizes per-file
   results by ``(sha256(source), faultload_digest)`` so repeated campaigns
   over unchanged trees (the as-a-Service case) skip re-matching.

The engine returns byte-identical :class:`InjectionPoint` lists to the
naive per-spec matcher (see ``tests/test_scan_engine.py``).
"""

from __future__ import annotations

import ast
import os
from concurrent.futures import ProcessPoolExecutor
from dataclasses import dataclass, field
from pathlib import Path

from repro.common.fsutil import iter_python_files
from repro.common.textutil import truncate
from repro.dsl.compiler import compile_spec
from repro.dsl.metamodel import MetaModel
from repro.dsl.parser import BugSpec
from repro.scanner.cache import (
    ScanCache,
    faultload_digest,
    source_digest,
    tree_digest_of,
)
from repro.scanner.matcher import Match, Matcher, is_stmt_list, pick_match
from repro.scanner.points import InjectionPoint, component_of
from repro.scanner.prefilter import FileFingerprint


@dataclass
class ScanResult:
    """Outcome of scanning a source tree with a set of bug specs."""

    points: list[InjectionPoint] = field(default_factory=list)
    files_scanned: int = 0
    parse_errors: dict[str, str] = field(default_factory=dict)

    def by_spec(self) -> dict[str, list[InjectionPoint]]:
        grouped: dict[str, list[InjectionPoint]] = {}
        for point in self.points:
            grouped.setdefault(point.spec_name, []).append(point)
        return grouped

    def merge(self, other: "ScanResult") -> None:
        self.points.extend(other.points)
        self.files_scanned += other.files_scanned
        self.parse_errors.update(other.parse_errors)


# -- the per-file index ---------------------------------------------------------


@dataclass
class FileIndex:
    """Everything the matchers need from one file, built in one walk."""

    tree: ast.AST
    stmt_lists: list[tuple[ast.AST, str, list[ast.stmt]]]
    fingerprint: FileFingerprint


def build_index(tree: ast.AST) -> FileIndex:
    """Collect the statement lists and the fingerprint in a single walk."""
    fingerprint = FileFingerprint()
    stmt_lists: list[tuple[ast.AST, str, list[ast.stmt]]] = []
    for node in ast.walk(tree):
        fingerprint.add_node(node)
        for fname, value in ast.iter_fields(node):
            if is_stmt_list(value):
                stmt_lists.append((node, fname, value))
    return FileIndex(tree=tree, stmt_lists=stmt_lists, fingerprint=fingerprint)


# -- the scan engine ------------------------------------------------------------


class ScanEngine:
    """Compiled faultload + matchers, reusable across many files.

    One engine per scan (or per warm worker process): matchers are
    constructed once, the faultload digest is computed once, and prefilter
    effectiveness is tracked in :attr:`pairs_total` / :attr:`pairs_skipped`.
    """

    def __init__(self, models: list[MetaModel]) -> None:
        self.models = models
        self._matchers = [Matcher(model) for model in models]
        self._digest: str | None = None
        self.pairs_total = 0
        self.pairs_skipped = 0

    @property
    def digest(self) -> str:
        if self._digest is None:
            self._digest = faultload_digest(self.models)
        return self._digest

    def scan_rows(self, source: str) -> list[dict]:
        """File-independent match rows of every model, in model order."""
        index = build_index(ast.parse(source))
        rows: list[dict] = []
        for model, matcher in zip(self.models, self._matchers):
            self.pairs_total += 1
            requirements = model.requirements
            if (requirements is not None
                    and not requirements.satisfied_by(index.fingerprint)):
                self.pairs_skipped += 1
                continue
            for ordinal, match in enumerate(
                matcher.find_matches_in(index.stmt_lists)
            ):
                snippet = "; ".join(
                    ast.unparse(stmt).splitlines()[0]
                    for stmt in match.stmts[:3]
                )
                rows.append({
                    "spec_name": model.name,
                    "ordinal": ordinal,
                    "lineno": match.lineno,
                    "end_lineno": match.end_lineno,
                    "snippet": truncate(snippet, 120),
                })
        return rows

    def scan_source(self, source: str,
                    file: str = "<string>") -> list[InjectionPoint]:
        return rows_to_points(self.scan_rows(source), file)

    def prefilter_stats(self) -> dict:
        return {
            "pairs_total": self.pairs_total,
            "pairs_skipped": self.pairs_skipped,
            "skip_rate": (self.pairs_skipped / self.pairs_total
                          if self.pairs_total else 0.0),
        }


def rows_to_points(rows: list[dict], file: str) -> list[InjectionPoint]:
    """Attach file identity to cached/engine match rows."""
    component = component_of(file)
    return [
        InjectionPoint(
            spec_name=row["spec_name"],
            file=file,
            ordinal=row["ordinal"],
            lineno=row["lineno"],
            end_lineno=row["end_lineno"],
            snippet=row["snippet"],
            component=component,
        )
        for row in rows
    ]


# -- single-source entry points -------------------------------------------------


def match_source(source: str, model: MetaModel) -> list[Match]:
    """All matches of one meta-model in a source string."""
    tree = ast.parse(source)
    requirements = model.requirements
    if requirements is not None:
        index = build_index(tree)
        if not requirements.satisfied_by(index.fingerprint):
            return []
        return Matcher(model).find_matches_in(index.stmt_lists)
    return Matcher(model).find_matches(tree)


def nth_match(source: str, model: MetaModel, ordinal: int) -> Match:
    """Re-locate the ``ordinal``-th match of ``model`` in ``source``.

    Used by the mutator: injection points store (spec, file, ordinal), and
    mutation re-parses the pristine file, so matches must be re-derived
    deterministically.
    """
    return pick_match(match_source(source, model), model.name, ordinal)


def scan_source(
    source: str, models: list[MetaModel], file: str = "<string>"
) -> list[InjectionPoint]:
    """Scan one source string with every meta-model."""
    return ScanEngine(models).scan_source(source, file=file)


def scan_file(
    path: str | Path,
    models: list[MetaModel] | None = None,
    root: str | Path | None = None,
    engine: ScanEngine | None = None,
    cache: ScanCache | None = None,
) -> ScanResult:
    """Scan one file; unreadable/unparseable files are recorded, not fatal."""
    path = Path(path)
    rel = _rel_name(path, root)
    result = ScanResult(files_scanned=1)
    try:
        source = path.read_text(encoding="utf-8", errors="replace")
    except OSError as exc:
        result.parse_errors[rel] = _os_error_text(exc)
        return result
    if engine is None:
        if models is None:
            raise ValueError("scan_file needs either models or an engine")
        engine = ScanEngine(models)
    if cache is not None:
        sha = source_digest(source)
        entry = cache.lookup(sha, engine.digest)
        if entry is not None:
            _apply_cache_entry(result, entry, rel)
            return result
    result = _scan_source_result(source, rel, engine)
    if cache is not None:
        cache.store(sha, engine.digest, _result_entry(result, rel))
    return result


def _rel_name(path: Path, root: str | Path | None) -> str:
    return str(path.relative_to(root)) if root else path.name


def _os_error_text(exc: OSError) -> str:
    reason = exc.strerror or type(exc).__name__
    return f"unreadable: {reason}"


def _scan_source_result(source: str, rel: str,
                        engine: ScanEngine) -> ScanResult:
    """Scan one source string into a per-file result (the single place
    the serial, parallel-parent, and worker paths all go through)."""
    result = ScanResult(files_scanned=1)
    try:
        rows = engine.scan_rows(source)
    except SyntaxError as exc:
        result.parse_errors[rel] = f"{exc.msg} (line {exc.lineno})"
    else:
        result.points = rows_to_points(rows, rel)
    return result


def _result_entry(result: ScanResult, rel: str) -> dict:
    """The cache entry describing one per-file result."""
    if rel in result.parse_errors:
        return {"matches": [], "error": result.parse_errors[rel]}
    return {
        "matches": [_point_row(point) for point in result.points],
        "error": None,
    }


def _apply_cache_entry(result: ScanResult, entry: dict, rel: str) -> None:
    error = entry.get("error")
    if error:
        result.parse_errors[rel] = error
    else:
        result.points = rows_to_points(entry.get("matches", []), rel)


# -- tree / file-list scanning --------------------------------------------------


def scan_tree(
    root: str | Path,
    specs: list[BugSpec],
    jobs: int = 1,
    cache: ScanCache | None = None,
    incremental: bool = True,
) -> ScanResult:
    """Scan every Python file under ``root`` with every spec.

    ``jobs > 1`` distributes files over warm worker processes.  Results are
    returned in deterministic file order regardless of parallelism.
    """
    root = Path(root)
    files = sorted(iter_python_files(root))
    scan_root = root if root.is_dir() else root.parent
    return scan_files(files, specs, root=scan_root, jobs=jobs, cache=cache,
                      incremental=incremental)


def scan_files(
    paths: list[Path],
    specs: list[BugSpec],
    root: str | Path | None = None,
    jobs: int = 1,
    cache: ScanCache | None = None,
    models: list[MetaModel] | None = None,
    incremental: bool = True,
) -> ScanResult:
    """Scan an explicit list of files with the indexed engine.

    Missing or unreadable files are recorded in ``parse_errors`` instead of
    aborting the scan (campaigns keep running on the files that exist).
    Pass pre-compiled ``models`` to skip recompilation on the serial path.
    With a cache, the scan is *incremental*: files whose ``(size,
    mtime_ns)`` match the root's stat manifest are trusted without being
    read, and an unchanged tree is served whole from one tree-manifest
    entry — a re-campaign over a tree with k changed files reads, hashes,
    and scans only those k files (``incremental=False`` keeps the per-file
    cache but always re-reads and re-hashes everything).
    """
    paths = [Path(path) for path in paths]
    if cache is not None:
        return _scan_files_cached(paths, specs, root, jobs, cache, models,
                                  incremental)
    if jobs <= 1 or len(paths) <= 1:
        engine = ScanEngine(models if models is not None
                            else [compile_spec(spec) for spec in specs])
        total = ScanResult()
        for path in paths:
            total.merge(scan_file(path, root=root, engine=engine))
        return total
    return _scan_files_parallel(paths, specs, root, jobs)


def _error_result(rel: str, exc: OSError) -> ScanResult:
    result = ScanResult(files_scanned=1)
    result.parse_errors[rel] = _os_error_text(exc)
    return result


def _scan_files_cached(
    paths: list[Path],
    specs: list[BugSpec],
    root: str | Path | None,
    jobs: int,
    cache: ScanCache,
    models: list[MetaModel] | None,
    incremental: bool,
) -> ScanResult:
    """The cached scan pipeline: stat -> tree manifest -> per-file -> scan.

    Phase 1 resolves every path to a content sha, reading only files the
    stat manifest cannot vouch for.  Phase 2 tries to serve the whole scan
    from one tree-manifest entry.  Phase 3 resolves per-file cache hits
    and lazily reads trusted-but-uncached files.  Phase 4 scans the
    remaining misses (serially on a warm engine, or fanned out over warm
    worker processes), shipping the exact source that was hashed so every
    stored entry describes the content behind its key even if the file
    changes mid-scan.
    """
    rels = {path: _rel_name(path, root) for path in paths}
    load_digest = faultload_digest(models if models is not None else specs)
    resolved: dict[Path, ScanResult] = {}
    #: Content by path; None = sha trusted from the manifest, not read yet.
    sources: dict[Path, str | None] = {}
    shas: dict[Path, str] = {}
    manifest = (cache.load_stat_manifest(root)
                if incremental and root is not None else {})
    new_manifest: dict[str, dict] = {}
    unreadable = False

    # Phase 1: content identity for every path, reading as little as
    # possible.  A manifest entry whose (size, mtime_ns) still match
    # vouches for the sha without a read.
    for path in paths:
        if path in sources:
            continue  # duplicate path in the list
        rel = rels[path]
        abs_key = os.path.abspath(str(path))
        try:
            stat = path.stat()
        except OSError as exc:
            resolved[path] = _error_result(rel, exc)
            unreadable = True
            continue
        known = manifest.get(abs_key)
        if (known is not None
                and known.get("size") == stat.st_size
                and known.get("mtime_ns") == stat.st_mtime_ns):
            cache.note_stat_hit()
            sources[path] = None
            shas[path] = known["sha"]
            new_manifest[abs_key] = known
            continue
        try:
            source = path.read_text(encoding="utf-8", errors="replace")
        except OSError as exc:
            resolved[path] = _error_result(rel, exc)
            unreadable = True
            continue
        cache.note_read()
        sha = source_digest(source)
        sources[path] = source
        shas[path] = sha
        try:
            after = path.stat()
        except OSError:
            continue
        if (after.st_size, after.st_mtime_ns) == (stat.st_size,
                                                  stat.st_mtime_ns):
            # Only vouch for content that provably did not change while
            # we were reading it.
            new_manifest[abs_key] = {"size": stat.st_size,
                                     "mtime_ns": stat.st_mtime_ns,
                                     "sha": sha}

    # Phase 2: one tree-manifest entry can serve the entire scan.  The
    # digest identifies the {rel: sha} map, so it is only meaningful when
    # every file hashed and no two distinct contents share a rel name.
    tree_key = None
    if incremental and not unreadable and shas:
        rel_to_sha: dict[str, str] = {}
        collision = False
        for path, sha in shas.items():
            rel = rels[path]
            if rel_to_sha.setdefault(rel, sha) != sha:
                collision = True
                break
        if not collision:
            tree_key = tree_digest_of(rel_to_sha)
            entry = cache.lookup_tree(tree_key, load_digest)
            if entry is not None and all(
                rels[path] in entry["files"] for path in paths
            ):
                cache.note_hits(len(paths))
                total = ScanResult()
                for path in paths:
                    result = ScanResult(files_scanned=1)
                    _apply_cache_entry(result, entry["files"][rels[path]],
                                       rels[path])
                    total.merge(result)
                if incremental and root is not None:
                    cache.save_stat_manifest(root, new_manifest)
                return total

    # Phase 3: per-file cache hits; trusted-but-uncached files are read
    # now (e.g. a new faultload over an unchanged tree).  A path whose
    # content is already queued for scanning is an *alias*: its lookup is
    # deferred until the scan stores the shared entry, so identical
    # contents are scanned once and still counted as a hit.
    misses: list[tuple[Path, str]] = []
    pending: set[str] = set()
    aliases: list[Path] = []
    for path in paths:
        if path in resolved:
            continue
        rel = rels[path]
        if shas[path] in pending:
            aliases.append(path)
            continue
        entry = cache.lookup(shas[path], load_digest)
        if entry is not None:
            result = ScanResult(files_scanned=1)
            _apply_cache_entry(result, entry, rel)
            resolved[path] = result
            continue
        source = sources[path]
        if source is None:
            try:
                source = path.read_text(encoding="utf-8", errors="replace")
            except OSError as exc:
                resolved[path] = _error_result(rel, exc)
                unreadable = True
                continue
            cache.note_read()
            actual = source_digest(source)
            if actual != shas[path]:
                # The manifest vouched for stale content: repair the sha
                # and stop trusting this round's tree digest.
                shas[path] = actual
                new_manifest.pop(os.path.abspath(str(path)), None)
                tree_key = None
            sources[path] = source
        pending.add(shas[path])
        misses.append((path, source))

    # Phase 4: scan the misses.
    if misses:
        if jobs > 1 and len(misses) > 1:
            flat = _scan_chunks(misses, specs, root, jobs)
        else:
            engine = ScanEngine(models if models is not None
                                else [compile_spec(spec) for spec in specs])
            flat = [_scan_source_result(source, rels[path], engine)
                    for path, source in misses]
        for (path, _source), result in zip(misses, flat):
            resolved[path] = result
            cache.store(shas[path], load_digest,
                        _result_entry(result, rels[path]))

    for path in aliases:
        rel = rels[path]
        entry = cache.lookup(shas[path], load_digest)
        result = ScanResult(files_scanned=1)
        if entry is not None:
            _apply_cache_entry(result, entry, rel)
        else:
            # The shared entry vanished (sha repaired mid-scan): scan the
            # alias itself rather than guessing.
            try:
                source = path.read_text(encoding="utf-8", errors="replace")
            except OSError as exc:
                resolved[path] = _error_result(rel, exc)
                unreadable = True
                continue
            cache.note_read()
            engine = ScanEngine(models if models is not None
                                else [compile_spec(spec) for spec in specs])
            result = _scan_source_result(source, rel, engine)
        resolved[path] = result

    total = ScanResult()
    for path in paths:
        total.merge(resolved[path])
    if incremental and root is not None:
        cache.save_stat_manifest(root, new_manifest)
    if tree_key is not None and not unreadable:
        cache.store_tree(tree_key, load_digest, {
            rels[path]: _result_entry(resolved[path], rels[path])
            for path in paths
        })
    return total


def _scan_files_parallel(
    paths: list[Path],
    specs: list[BugSpec],
    root: str | Path | None,
    jobs: int,
) -> ScanResult:
    """Fan files out over warm workers (no cache); merge in path order."""
    flat = _scan_chunks([(path, None) for path in paths], specs, root, jobs)
    total = ScanResult()
    for result in flat:
        total.merge(result)
    return total


def _scan_chunks(
    items: "list[tuple[Path, str | None]]",
    specs: list[BugSpec],
    root: str | Path | None,
    jobs: int,
) -> list[ScanResult]:
    """Dispatch ``(path, source-or-None)`` pairs over warm workers.

    Results come back in submission order; ``None`` sources are read by
    the worker.
    """
    chunk_size = max(1, -(-len(items) // (jobs * 4)))
    chunks = [items[i:i + chunk_size]
              for i in range(0, len(items), chunk_size)]
    flat: list[ScanResult] = []
    with ProcessPoolExecutor(
        max_workers=min(jobs, len(chunks)),
        initializer=_scan_worker_init,
        initargs=(specs,),
    ) as pool:
        futures = [
            pool.submit(_scan_chunk_task,
                        [(str(path), source) for path, source in chunk],
                        str(root) if root is not None else None)
            for chunk in chunks
        ]
        for future in futures:
            flat.extend(future.result())
    return flat


def _point_row(point: InjectionPoint) -> dict:
    return {
        "spec_name": point.spec_name,
        "ordinal": point.ordinal,
        "lineno": point.lineno,
        "end_lineno": point.end_lineno,
        "snippet": point.snippet,
    }


#: Per-process warm engine: specs are compiled once per worker instead of
#: once per file (the seed behavior, which dwarfed parse cost at 120 specs).
_WORKER_ENGINE: ScanEngine | None = None


def _scan_worker_init(specs: list[BugSpec]) -> None:
    global _WORKER_ENGINE
    _WORKER_ENGINE = ScanEngine([compile_spec(spec) for spec in specs])


def _scan_chunk_task(
    items: list[tuple[str, str | None]], root: str | None
) -> list[ScanResult]:
    assert _WORKER_ENGINE is not None, "worker initializer did not run"
    results = []
    for path, source in items:
        if source is None:
            results.append(scan_file(Path(path), root=root,
                                     engine=_WORKER_ENGINE))
        else:
            # The parent already read (and hashed) this content; scan
            # exactly it rather than re-reading a possibly-changed file.
            results.append(_scan_source_result(
                source, _rel_name(Path(path), root), _WORKER_ENGINE))
    return results
