"""Injection points: the *where* of fault injection (paper §IV-A).

An :class:`InjectionPoint` is a statement (or group of statements) in the
source code where the tool can inject the software bug described by one bug
specification.  Points are identified by ``spec:file:ordinal`` so they stay
stable across re-scans of the same source snapshot, and serializable so the
fault injection plan can be saved and sampled.
"""

from __future__ import annotations

from dataclasses import asdict, dataclass
from pathlib import PurePosixPath


@dataclass(frozen=True)
class InjectionPoint:
    """One place where one fault type can be injected."""

    spec_name: str
    file: str
    ordinal: int
    lineno: int
    end_lineno: int
    snippet: str
    component: str

    @property
    def point_id(self) -> str:
        """Stable identifier ``spec:file:ordinal``."""
        return f"{self.spec_name}:{self.file}:{self.ordinal}"

    def to_dict(self) -> dict:
        data = asdict(self)
        data["point_id"] = self.point_id
        return data

    @classmethod
    def from_dict(cls, data: dict) -> "InjectionPoint":
        fields = {k: data[k] for k in (
            "spec_name", "file", "ordinal", "lineno", "end_lineno",
            "snippet", "component",
        )}
        return cls(**fields)


def component_of(file: str) -> str:
    """Component name for drill-down: the first path segment of ``file``.

    The paper's failure-propagation analysis groups source files into
    components (sub-systems); by default the top-level directory (or the
    bare module name for root-level files) is the component.
    """
    parts = PurePosixPath(file.replace("\\", "/")).parts
    if len(parts) > 1:
        return parts[0]
    name = parts[0] if parts else file
    return name[:-3] if name.endswith(".py") else name
