"""Source-code scanner: meta-model matching over program ASTs (§IV-A)."""

from repro.scanner.bindings import Bindings, CallCapture
from repro.scanner.cache import (
    MatchMemo,
    ScanCache,
    faultload_digest,
    source_digest,
)
from repro.scanner.matcher import Match, Matcher, call_name, name_matches
from repro.scanner.points import InjectionPoint, component_of
from repro.scanner.prefilter import (
    FileFingerprint,
    SpecRequirements,
    derive_requirements,
)
from repro.scanner.scan import (
    FileIndex,
    ScanEngine,
    ScanResult,
    build_index,
    match_source,
    nth_match,
    scan_file,
    scan_files,
    scan_source,
    scan_tree,
)

__all__ = [
    "Bindings",
    "CallCapture",
    "FileFingerprint",
    "FileIndex",
    "InjectionPoint",
    "Match",
    "MatchMemo",
    "Matcher",
    "ScanCache",
    "ScanEngine",
    "ScanResult",
    "SpecRequirements",
    "build_index",
    "call_name",
    "component_of",
    "derive_requirements",
    "faultload_digest",
    "match_source",
    "name_matches",
    "nth_match",
    "scan_file",
    "scan_files",
    "scan_source",
    "scan_tree",
    "source_digest",
]
