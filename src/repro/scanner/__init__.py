"""Source-code scanner: meta-model matching over program ASTs (§IV-A)."""

from repro.scanner.bindings import Bindings, CallCapture
from repro.scanner.matcher import Match, Matcher, call_name, name_matches
from repro.scanner.points import InjectionPoint, component_of
from repro.scanner.scan import (
    ScanResult,
    match_source,
    nth_match,
    scan_file,
    scan_source,
    scan_tree,
)

__all__ = [
    "Bindings",
    "CallCapture",
    "InjectionPoint",
    "Match",
    "Matcher",
    "ScanResult",
    "call_name",
    "component_of",
    "match_source",
    "name_matches",
    "nth_match",
    "scan_file",
    "scan_source",
    "scan_tree",
]
