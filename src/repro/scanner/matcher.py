"""The pattern-matching engine: meta-model AST vs. program AST (paper §IV-A).

The matcher walks every statement list of the target program and tries to
match the compiled code pattern as a contiguous *window* of statements.
Matching is structural: plain Python nodes in the pattern must equal the
target node-for-node (ignoring positions and expression contexts), while
directive placeholders match families of nodes:

* ``$BLOCK{stmts=min,max}`` — a run of ``min..max`` statements (lazy, with
  backtracking);  a bare ``...`` statement is sugar for ``$BLOCK{stmts=0,*}``;
* ``$CALL{name=glob}(...)`` — a call whose (dotted) name matches the glob;
  ``...`` inside the argument list absorbs any run of arguments;
* ``$EXPR`` / ``$STRING`` / ``$NUM`` / ``$VAR`` — expression-level wildcards.

Nested statement lists inside a pattern construct (e.g. an ``if`` body)
must match the target list *entirely*; only the outermost pattern matches a
window, mirroring the paper's examples.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field

from repro.common.textutil import glob_match
from repro.dsl.directives import Directive, DirectiveKind
from repro.dsl.metamodel import (
    MetaModel,
    is_ellipsis_expr,
    is_ellipsis_stmt,
)
from repro.dsl.params import UNBOUNDED
from repro.scanner.bindings import Bindings, CallCapture

#: AST fields irrelevant for structural equality.
_IGNORED_FIELDS = {"ctx", "type_comment", "type_ignores", "type_params"}

#: Internal binding key collecting the identities of concretely-matched
#: statements, used to deduplicate overlapping windows.
_ANCHORS_TAG = "__anchors__"


@dataclass
class Match:
    """A matched window of statements, ready for mutation."""

    owner: ast.AST
    field: str
    start: int
    end: int
    bindings: Bindings
    spec_name: str = ""

    @property
    def stmts(self) -> list[ast.stmt]:
        return getattr(self.owner, self.field)[self.start:self.end]

    @property
    def lineno(self) -> int:
        stmts = self.stmts
        return stmts[0].lineno if stmts else 0

    @property
    def end_lineno(self) -> int:
        stmts = self.stmts
        if not stmts:
            return 0
        return getattr(stmts[-1], "end_lineno", stmts[-1].lineno)

    def sort_key(self) -> tuple:
        stmts = self.stmts
        col = stmts[0].col_offset if stmts else 0
        return (self.lineno, col, self.end_lineno)


def call_name(func: ast.expr) -> str | None:
    """Dotted name of a call target (``utils.execute``), or None."""
    parts: list[str] = []
    node = func
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if isinstance(node, ast.Name):
        parts.append(node.id)
    elif parts:
        # Call on a computed object, e.g. get_client().delete_port(...):
        # the dotted suffix is still meaningful for matching.
        parts.append("*")
    else:
        return None
    return ".".join(reversed(parts))


def name_matches(pattern: str, dotted: str | None) -> bool:
    """Match a name glob against a dotted call name.

    The glob matches if it matches the full dotted name or, when the glob
    itself is undotted, the final segment (so ``delete_*`` matches
    ``self.client.delete_port``).
    """
    if dotted is None:
        return pattern == "*"
    if glob_match(pattern, dotted):
        return True
    if "." not in pattern:
        return glob_match(pattern, dotted.rsplit(".", 1)[-1])
    return False


def _is_compound_stmt(stmt: ast.stmt) -> bool:
    """True for statements that own nested statement suites."""
    return any(
        isinstance(value, list) and value
        and all(isinstance(item, (ast.stmt, ast.excepthandler))
                for item in value)
        for _name, value in ast.iter_fields(stmt)
    )


def pick_match(matches: "list[Match]", spec_name: str, ordinal: int) -> "Match":
    """The ``ordinal``-th match, with the shared out-of-range diagnostic."""
    if ordinal >= len(matches):
        raise IndexError(
            f"spec {spec_name!r} has {len(matches)} matches, "
            f"ordinal {ordinal} requested"
        )
    return matches[ordinal]


def is_stmt_list(value) -> bool:
    """True for a non-empty field value holding only statements.

    Shared by :func:`iter_stmt_lists` and the scan engine's index builder
    so both walks agree, by construction, on what counts as a matchable
    statement list.
    """
    return (
        isinstance(value, list)
        and bool(value)
        and all(isinstance(item, ast.stmt) for item in value)
    )


def iter_stmt_lists(tree: ast.AST):
    """Yield every ``(owner, field, stmt_list)`` in ``tree``, outside-in."""
    for node in ast.walk(tree):
        for fname, value in ast.iter_fields(node):
            if is_stmt_list(value):
                yield node, fname, value


class Matcher:
    """Find every match of one meta-model inside a target AST."""

    def __init__(self, model: MetaModel) -> None:
        self.model = model
        self._pattern = model.pattern_stmts
        self._min_len = self._pattern_min_len(self._pattern)

    # -- public API ----------------------------------------------------------

    def find_matches(self, tree: ast.AST) -> list[Match]:
        """All matches of the pattern in ``tree``, in source order."""
        return self.find_matches_in(iter_stmt_lists(tree))

    def find_matches_in(self, stmt_lists) -> list[Match]:
        """All matches over pre-collected ``(owner, field, stmts)`` lists.

        The indexed scan engine collects the statement lists of a file once
        (one AST walk) and runs every surviving matcher against them; see
        :class:`repro.scanner.scan.FileIndex`.

        Overlapping matches that pin the same *anchor* statements (the
        concrete, non-wildcard pattern elements) are duplicates — variable
        ``$BLOCK`` context can slide around the same injected statement —
        and only the first is kept, so the faultload contains one mutant
        per genuinely distinct injection.
        """
        matches: list[Match] = []
        seen_anchors: set[tuple] = set()
        for owner, fname, stmts in stmt_lists:
            index = 0
            while index + self._min_len <= len(stmts):
                bindings = Bindings()
                end = self._match_seq(
                    self._pattern, 0, stmts, index, bindings, anchored_end=False
                )
                if end is not None:
                    anchors = bindings.get(_ANCHORS_TAG) or (
                        id(owner), fname, index, end,
                    )
                    if anchors not in seen_anchors:
                        seen_anchors.add(anchors)
                        matches.append(
                            Match(
                                owner=owner,
                                field=fname,
                                start=index,
                                end=end,
                                bindings=bindings,
                                spec_name=self.model.name,
                            )
                        )
                index += 1
        matches.sort(key=Match.sort_key)
        return matches

    # -- statement-sequence matching -----------------------------------------

    def _pattern_min_len(self, pattern: list[ast.stmt]) -> int:
        total = 0
        for stmt in pattern:
            directive = self.model.directive_of_stmt(stmt)
            if directive is not None and directive.kind is DirectiveKind.BLOCK:
                total += directive.stmt_range[0]
            elif is_ellipsis_stmt(stmt):
                total += 0
            else:
                total += 1
        return total

    def _match_seq(
        self,
        pattern: list[ast.stmt],
        p_index: int,
        stmts: list[ast.stmt],
        t_index: int,
        bindings: Bindings,
        anchored_end: bool,
    ) -> int | None:
        """Match ``pattern[p_index:]`` against ``stmts[t_index:]``.

        Returns the exclusive end index in ``stmts`` on success.  With
        ``anchored_end`` the pattern must consume the entire list.
        """
        if p_index == len(pattern):
            if anchored_end and t_index != len(stmts):
                return None
            return t_index

        p_stmt = pattern[p_index]
        directive = self.model.directive_of_stmt(p_stmt)

        if directive is not None and directive.kind is DirectiveKind.BLOCK:
            low, high = directive.stmt_range
            return self._match_block(
                pattern, p_index, stmts, t_index, bindings, anchored_end,
                low, high, directive.tag,
            )
        if is_ellipsis_stmt(p_stmt):
            return self._match_block(
                pattern, p_index, stmts, t_index, bindings, anchored_end,
                0, UNBOUNDED, None,
            )

        if t_index >= len(stmts):
            return None
        # No snapshot here: every caller that retries alternatives works on
        # its own trial copy (the $BLOCK take-loop, the expression-sequence
        # wildcards, the per-window bindings), so a failed concrete match
        # may safely leave partial bindings behind — they are discarded
        # with the enclosing trial.  This keeps the common anchor-miss path
        # allocation-free.
        if not self._match_stmt(p_stmt, stmts[t_index], bindings):
            return None
        anchors = bindings.get(_ANCHORS_TAG) or ()
        bindings.bind(_ANCHORS_TAG, anchors + (id(stmts[t_index]),))
        return self._match_seq(
            pattern, p_index + 1, stmts, t_index + 1, bindings, anchored_end
        )

    def _match_block(
        self,
        pattern: list[ast.stmt],
        p_index: int,
        stmts: list[ast.stmt],
        t_index: int,
        bindings: Bindings,
        anchored_end: bool,
        low: int,
        high: int,
        tag: str | None,
    ) -> int | None:
        available = len(stmts) - t_index
        max_take = available if high == UNBOUNDED else min(high, available)
        if low > max_take:
            return None
        # Lazy expansion keeps matched windows tight, so e.g. the MFC
        # pattern produces one mutant per deletable call instead of one
        # giant window swallowing the rest of the function.
        for take in range(low, max_take + 1):
            trial = bindings.snapshot()
            trial.bind(tag, stmts[t_index:t_index + take])
            result = self._match_seq(
                pattern, p_index + 1, stmts, t_index + take, trial, anchored_end
            )
            if result is not None:
                bindings.adopt(trial)
                return result
        return None

    # -- single statement / node matching --------------------------------------

    def _match_stmt(self, p_stmt: ast.stmt, t_stmt: ast.stmt,
                    bindings: Bindings) -> bool:
        directive = self.model.directive_of_stmt(p_stmt)
        if directive is not None and directive.kind is DirectiveKind.CALL:
            if directive.call_context == "any":
                return self._match_call_anywhere(directive, t_stmt, bindings)
            # Bare $CALL as a statement: the call must be the outermost
            # expression of an expression statement (paper §III).
            if not isinstance(t_stmt, ast.Expr):
                return False
            return self._match_call_node(directive, None, t_stmt.value, bindings)
        return self._match_node(p_stmt, t_stmt, bindings)

    def _match_call_anywhere(self, directive: Directive, t_stmt: ast.stmt,
                             bindings: Bindings) -> bool:
        """``ctx=any``: match a *simple* statement containing a matching call.

        Compound statements (``def``, ``if``, ``try``, ...) are excluded:
        they would otherwise match whenever any nested statement contains
        the call, and replacing them would discard whole suites.
        """
        if _is_compound_stmt(t_stmt):
            return False
        for node in ast.walk(t_stmt):
            if isinstance(node, ast.Call) and name_matches(
                directive.name_pattern, call_name(node.func)
            ):
                capture = CallCapture(
                    call=node,
                    wildcards=[list(node.args)],
                    absorbed_keywords=list(node.keywords),
                    containing_stmt=t_stmt,
                )
                bindings.bind(directive.tag, capture)
                return True
        return False

    def _match_node(self, p_node: ast.AST, t_node: ast.AST,
                    bindings: Bindings) -> bool:
        directive = self.model.directive_of_name(p_node)
        if directive is not None:
            return self._match_directive_expr(directive, t_node, bindings)
        if isinstance(p_node, ast.Call):
            directive = self.model.directive_of_call(p_node)
            if directive is not None:
                return self._match_call_node(directive, p_node, t_node, bindings)
        if is_ellipsis_expr(p_node):
            return isinstance(t_node, ast.expr)
        if type(p_node) is not type(t_node):
            return False
        for fname, p_value in ast.iter_fields(p_node):
            if fname in _IGNORED_FIELDS:
                continue
            t_value = getattr(t_node, fname, None)
            if isinstance(p_value, list):
                if not self._match_list(fname, p_value, t_value, bindings):
                    return False
            elif isinstance(p_value, ast.AST):
                if not isinstance(t_value, ast.AST):
                    return False
                if not self._match_node(p_value, t_value, bindings):
                    return False
            else:
                if t_value != p_value:
                    return False
        return True

    def _match_list(self, fname: str, p_list: list, t_list,
                    bindings: Bindings) -> bool:
        if not isinstance(t_list, list):
            return False
        if p_list and all(isinstance(item, ast.stmt) for item in p_list):
            # A nested statement list must match entirely (anchored).
            end = self._match_seq(p_list, 0, t_list, 0, bindings,
                                  anchored_end=True)
            return end is not None
        if not p_list:
            return not t_list
        if all(isinstance(item, ast.expr) for item in p_list):
            return self._match_expr_seq(p_list, t_list, bindings)
        # Heterogeneous lists (keywords, handlers, comprehensions, ...)
        # match element-wise.
        if len(p_list) != len(t_list):
            return False
        for p_item, t_item in zip(p_list, t_list):
            if isinstance(p_item, ast.AST):
                if not isinstance(t_item, ast.AST):
                    return False
                if not self._match_node(p_item, t_item, bindings):
                    return False
            elif p_item != t_item:
                return False
        return True

    def _match_expr_seq(self, p_list: list[ast.expr], t_list: list,
                        bindings: Bindings) -> bool:
        """Match expression lists with ``...`` acting as a 0+ wildcard."""

        def recurse(p_index: int, t_index: int, binds: Bindings) -> bool:
            if p_index == len(p_list):
                return t_index == len(t_list)
            p_item = p_list[p_index]
            if is_ellipsis_expr(p_item):
                for take in range(0, len(t_list) - t_index + 1):
                    trial = binds.snapshot()
                    if recurse(p_index + 1, t_index + take, trial):
                        binds.adopt(trial)
                        return True
                return False
            if t_index >= len(t_list):
                return False
            t_item = t_list[t_index]
            trial = binds.snapshot()
            if isinstance(p_item, ast.AST):
                if not isinstance(t_item, ast.AST):
                    return False
                if not self._match_node(p_item, t_item, trial):
                    return False
            elif p_item != t_item:
                return False
            if recurse(p_index + 1, t_index + 1, trial):
                binds.adopt(trial)
                return True
            return False

        return recurse(0, 0, bindings)

    # -- directive matching ------------------------------------------------------

    def _match_directive_expr(self, directive: Directive, t_node: ast.AST,
                              bindings: Bindings) -> bool:
        kind = directive.kind
        if kind is DirectiveKind.EXPR:
            if not isinstance(t_node, ast.expr):
                return False
            var = directive.var_pattern
            if var is not None:
                if not isinstance(t_node, ast.Name):
                    return False
                if not glob_match(var, t_node.id):
                    return False
            bindings.bind(directive.tag, t_node)
            return True
        if kind is DirectiveKind.STRING:
            if not (isinstance(t_node, ast.Constant)
                    and isinstance(t_node.value, str)):
                return False
            if not glob_match(directive.value_pattern, t_node.value):
                return False
            bindings.bind(directive.tag, t_node)
            return True
        if kind is DirectiveKind.NUM:
            if not (
                isinstance(t_node, ast.Constant)
                and isinstance(t_node.value, (int, float))
                and not isinstance(t_node.value, bool)
            ):
                return False
            low = directive.params.get_float("min", float("-inf"))
            high = directive.params.get_float("max", float("inf"))
            if not low <= t_node.value <= high:
                return False
            bindings.bind(directive.tag, t_node)
            return True
        if kind is DirectiveKind.VAR:
            if not isinstance(t_node, ast.Name):
                return False
            if not glob_match(directive.name_pattern, t_node.id):
                return False
            bindings.bind(directive.tag, t_node)
            return True
        if kind is DirectiveKind.CALL:
            # Bare $CALL in expression position: any matching call.
            return self._match_call_node(directive, None, t_node, bindings)
        return False

    def _match_call_node(
        self,
        directive: Directive,
        p_call: ast.Call | None,
        t_node: ast.AST,
        bindings: Bindings,
    ) -> bool:
        if not isinstance(t_node, ast.Call):
            return False
        if not name_matches(directive.name_pattern, call_name(t_node.func)):
            return False
        if p_call is None:
            capture = CallCapture(
                call=t_node,
                wildcards=[list(t_node.args)],
                absorbed_keywords=list(t_node.keywords),
            )
            bindings.bind(directive.tag, capture)
            return True
        return self._match_call_args(directive, p_call, t_node, bindings)

    def _match_call_args(
        self,
        directive: Directive,
        p_call: ast.Call,
        t_call: ast.Call,
        bindings: Bindings,
    ) -> bool:
        p_args = p_call.args
        t_args = t_call.args
        has_wildcard = any(is_ellipsis_expr(arg) for arg in p_args)

        def recurse(
            p_index: int, t_index: int, binds: Bindings,
            captured: list[list[ast.expr]],
        ) -> list[list[ast.expr]] | None:
            if p_index == len(p_args):
                if t_index != len(t_args):
                    return None
                return captured
            p_item = p_args[p_index]
            if is_ellipsis_expr(p_item):
                for take in range(0, len(t_args) - t_index + 1):
                    trial = binds.snapshot()
                    result = recurse(
                        p_index + 1, t_index + take, trial,
                        captured + [t_args[t_index:t_index + take]],
                    )
                    if result is not None:
                        binds.adopt(trial)
                        return result
                return None
            if t_index >= len(t_args):
                return None
            trial = binds.snapshot()
            if not self._match_node(p_item, t_args[t_index], trial):
                return None
            result = recurse(p_index + 1, t_index + 1, trial, captured)
            if result is not None:
                binds.adopt(trial)
            return result

        trial = bindings.snapshot()
        wildcards = recurse(0, 0, trial, [])
        if wildcards is None:
            return False
        # Keyword arguments: explicit keyword patterns must match by name;
        # the rest are absorbed when the pattern has any wildcard.
        absorbed = list(t_call.keywords)
        for p_keyword in p_call.keywords:
            found = None
            for t_keyword in absorbed:
                if t_keyword.arg == p_keyword.arg:
                    found = t_keyword
                    break
            if found is None:
                return False
            if not self._match_node(p_keyword.value, found.value, trial):
                return False
            absorbed.remove(found)
        if absorbed and not has_wildcard:
            return False
        bindings.adopt(trial)
        capture = CallCapture(
            call=t_call,
            wildcards=wildcards,
            absorbed_keywords=absorbed if has_wildcard else [],
        )
        bindings.bind(directive.tag, capture)
        return True
