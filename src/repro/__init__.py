"""ProFIPy reproduction: programmable software fault injection for Python.

Reproduces Cotroneo, De Simone, Liguori, Natella - "ProFIPy: Programmable
Software Fault Injection as-a-Service" (DSN 2020).  Users describe bug
patterns in a DSL (:mod:`repro.dsl`), the scanner finds injection points
(:mod:`repro.scanner`), the mutator generates trigger-controlled mutants
(:mod:`repro.mutator`), campaigns execute them in sandboxes over a
workload (:mod:`repro.orchestrator`, :mod:`repro.sandbox`,
:mod:`repro.workload`), and the analysis layer classifies failure modes
and computes dependability metrics (:mod:`repro.analysis`).
"""

from repro.analysis import (
    CampaignReport,
    ClassificationRule,
    ComponentSpec,
    Distribution,
)
from repro.dsl import BugSpec, MetaModel, compile_all, compile_text, parse_spec
from repro.faultmodel import (
    FaultModel,
    expand_api_faults,
    extended_model,
    gswfit_model,
    predefined_models,
)
from repro.mutator import Mutation, Mutator
from repro.orchestrator import (
    Campaign,
    CampaignConfig,
    CampaignResult,
    ExperimentResult,
    Plan,
)
from repro.scanner import InjectionPoint, scan_source, scan_tree
from repro.service import ProFIPyService
from repro.workload import WorkloadSpec

__version__ = "1.0.0"

__all__ = [
    "BugSpec",
    "Campaign",
    "CampaignConfig",
    "CampaignReport",
    "CampaignResult",
    "ClassificationRule",
    "ComponentSpec",
    "Distribution",
    "ExperimentResult",
    "FaultModel",
    "InjectionPoint",
    "MetaModel",
    "Mutation",
    "Mutator",
    "Plan",
    "ProFIPyService",
    "WorkloadSpec",
    "__version__",
    "compile_all",
    "compile_text",
    "expand_api_faults",
    "extended_model",
    "gswfit_model",
    "parse_spec",
    "predefined_models",
    "scan_source",
    "scan_tree",
]
