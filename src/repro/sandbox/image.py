"""Sandbox images: staged, reusable snapshots of the target project.

ProFIPy "first creates a container image, in which it copies the Python
source code uploaded by the user", optionally customized by Dockerfile
directives (paper §IV-B).  Without a container runtime (see DESIGN.md),
an :class:`SandboxImage` is a staging directory holding the pristine
project tree plus the injected ``profipy_runtime`` module; every
experiment *instantiates* the image by copying it into a private sandbox
directory.

A small subset of containerfile directives is honoured at build time:

* ``ENV NAME=value`` — default environment for sandboxes;
* ``COPY src dst`` — copy an extra file/tree (relative to the build
  context) into the image;
* ``RUN command`` — run a shell command inside the staging tree (e.g. to
  generate fixtures).  Commands run with the same interpreter environment.
"""

from __future__ import annotations

import shlex
import shutil
from dataclasses import dataclass, field
from pathlib import Path

from repro.common.fsutil import copy_tree, remove_tree
from repro.common.procutil import run_command
from repro.mutator.runtime import write_runtime


class ImageBuildError(Exception):
    """A containerfile directive failed during image build."""


@dataclass
class SandboxImage:
    """A staged snapshot of the target project, ready to instantiate."""

    source_dir: Path
    staging_dir: Path
    env: dict[str, str] = field(default_factory=dict)

    @classmethod
    def build(
        cls,
        source_dir: str | Path,
        staging_dir: str | Path,
        containerfile: str | None = None,
        context_dir: str | Path | None = None,
        build_timeout: float = 60.0,
    ) -> "SandboxImage":
        """Stage ``source_dir`` (plus the runtime module) into an image."""
        source_dir = Path(source_dir)
        staging_dir = Path(staging_dir)
        remove_tree(staging_dir)
        copy_tree(source_dir, staging_dir)
        write_runtime(staging_dir)
        image = cls(source_dir=source_dir, staging_dir=staging_dir)
        if containerfile:
            image._apply_containerfile(
                containerfile,
                Path(context_dir) if context_dir else source_dir,
                build_timeout,
            )
        return image

    @classmethod
    def build_from_manifest(
        cls,
        manifest,
        staging_dir: str | Path,
        store,
    ) -> "SandboxImage":
        """Stage an image from its content-addressed manifest.

        The worker-side counterpart of :meth:`build`: the tree is
        materialized byte-identically (permission bits included) from a
        local :class:`~repro.service.blobs.BlobStore` instead of copied
        from a source directory, so no path shared with the dispatching
        host is needed.  Containerfile directives are *not* re-applied —
        the manifest snapshots the coordinator's fully-built staging
        tree, COPY/RUN effects and all, which keeps the materialized
        image deterministic.  The runtime module is (re)written so the
        sandbox engine on this host always matches its own mutator.
        """
        staging_dir = Path(staging_dir)
        manifest.materialize(staging_dir, store)
        write_runtime(staging_dir)
        return cls(source_dir=staging_dir, staging_dir=staging_dir,
                   env=dict(manifest.env))

    def _apply_containerfile(self, text: str, context: Path,
                             timeout: float) -> None:
        for line_no, raw in enumerate(text.splitlines(), start=1):
            line = raw.strip()
            if not line or line.startswith("#"):
                continue
            directive, _, rest = line.partition(" ")
            directive = directive.upper()
            rest = rest.strip()
            if directive == "ENV":
                name, sep, value = rest.partition("=")
                if not sep:
                    raise ImageBuildError(
                        f"line {line_no}: ENV expects NAME=value, got {rest!r}"
                    )
                self.env[name.strip()] = value.strip()
            elif directive == "COPY":
                parts = shlex.split(rest)
                if len(parts) != 2:
                    raise ImageBuildError(
                        f"line {line_no}: COPY expects 'src dst', got {rest!r}"
                    )
                src = context / parts[0]
                dst = self.staging_dir / parts[1].lstrip("/")
                if not src.exists():
                    raise ImageBuildError(
                        f"line {line_no}: COPY source {src} does not exist"
                    )
                if src.is_dir():
                    copy_tree(src, dst)
                else:
                    dst.parent.mkdir(parents=True, exist_ok=True)
                    # copy2, not write_bytes: an executable workload
                    # script COPYed into the image must keep its +x bit
                    # (it also has to survive the manifest round-trip
                    # when the image ships to a remote worker).
                    shutil.copy2(src, dst)
            elif directive == "RUN":
                import os

                env = dict(os.environ)
                env.update(self.env)
                result = run_command(rest, cwd=str(self.staging_dir),
                                     env=env, timeout=timeout)
                if not result.ok:
                    raise ImageBuildError(
                        f"line {line_no}: RUN {rest!r} failed "
                        f"(rc={result.returncode}): {result.stderr[:400]}"
                    )
            else:
                raise ImageBuildError(
                    f"line {line_no}: unsupported directive {directive!r} "
                    "(supported: ENV, COPY, RUN)"
                )

    def instantiate(self, dest: str | Path) -> Path:
        """Copy the staged tree into a fresh per-experiment directory."""
        dest = Path(dest)
        remove_tree(dest)
        copy_tree(self.staging_dir, dest)
        return dest

    def read_file(self, rel_path: str) -> str:
        return (self.staging_dir / rel_path).read_text(encoding="utf-8")

    def remove(self) -> None:
        remove_tree(self.staging_dir)
