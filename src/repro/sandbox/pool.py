"""Parallel experiment execution with adaptive throttling (§IV-B).

Experiments are independent (each owns a sandbox), so they parallelize
across cores.  The pool keeps at most ``ResourceMonitor.current_parallelism()``
jobs in flight — N-1 by default, halved under memory pressure — matching
the paper's containers-per-host policy.
"""

from __future__ import annotations

import threading
import traceback
from concurrent.futures import FIRST_COMPLETED, ThreadPoolExecutor, wait
from dataclasses import dataclass, field
from typing import Callable, Iterable

from repro.sandbox.limits import ResourceMonitor


@dataclass
class JobOutcome:
    """Result envelope for one pooled job."""

    index: int
    result: object = None
    error: str | None = None
    #: Set when the ``on_result`` callback itself raised: the job ran
    #: (``error`` still describes the job's own outcome) but its result
    #: could not be delivered — e.g. a failed stream append.
    sink_error: str | None = None

    @property
    def ok(self) -> bool:
        return self.error is None and self.sink_error is None


@dataclass
class ExperimentPool:
    """Run jobs concurrently, never exceeding the adaptive limit."""

    monitor: ResourceMonitor = field(default_factory=ResourceMonitor)
    parallelism: int | None = None

    def run(
        self,
        jobs: Iterable[Callable[[], object]],
        on_result: Callable[[JobOutcome], None] | None = None,
        retain_results: bool = True,
    ) -> list[JobOutcome]:
        """Execute ``jobs``; outcomes are returned in submission order.

        ``jobs`` may be any iterable (including a lazy generator — jobs
        are pulled only as worker slots free up, so a huge plan never
        materializes all at once).  Job exceptions are captured per-job
        (an experiment that breaks the harness must not sink the
        campaign).  ``on_result`` fires from the worker thread as each
        job completes — the streaming hook the campaign uses to append
        results to disk; with ``retain_results=False`` the result object
        is dropped right after the callback, keeping pool memory constant
        for arbitrarily long campaigns.  An exception raised by the
        callback itself (e.g. a failed stream append) is captured on the
        outcome's ``sink_error`` (the job's own ``error`` is preserved)
        and the pool keeps draining — it used to escape through
        ``future.result()`` and kill the whole campaign mid-flight.
        """
        job_iter = iter(jobs)
        hard_limit = self.parallelism or self.monitor.max_parallelism
        outcomes: list[JobOutcome] = []
        lock = threading.Lock()

        def run_job(index: int, job: Callable[[], object]) -> JobOutcome:
            try:
                outcome = JobOutcome(index=index, result=job())
            except Exception:  # noqa: BLE001 - captured per job
                outcome = JobOutcome(index=index,
                                     error=traceback.format_exc())
            if on_result is not None:
                try:
                    on_result(outcome)
                except Exception:  # noqa: BLE001 - captured per outcome
                    outcome.result = None
                    outcome.sink_error = traceback.format_exc()
            if not retain_results:
                outcome.result = None
            with lock:
                outcomes.append(outcome)
            return outcome

        with ThreadPoolExecutor(max_workers=hard_limit) as executor:
            pending: set = set()
            next_index = 0
            exhausted = False
            while True:
                limit = max(1, min(hard_limit, self._current_limit()))
                while not exhausted and len(pending) < limit:
                    try:
                        job = next(job_iter)
                    except StopIteration:
                        exhausted = True
                        break
                    pending.add(executor.submit(run_job, next_index, job))
                    next_index += 1
                if not pending:
                    break
                done, pending = wait(pending, timeout=0.5,
                                     return_when=FIRST_COMPLETED)
                for future in done:
                    future.result()  # re-raise harness bugs, if any
        outcomes.sort(key=lambda outcome: outcome.index)
        return outcomes

    def _current_limit(self) -> int:
        if self.parallelism is not None:
            return self.parallelism
        return self.monitor.current_parallelism()
