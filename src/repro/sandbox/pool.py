"""Parallel experiment execution with adaptive throttling (§IV-B).

Experiments are independent (each owns a sandbox), so they parallelize
across cores.  The pool keeps at most ``ResourceMonitor.current_parallelism()``
jobs in flight — N-1 by default, halved under memory pressure — matching
the paper's containers-per-host policy.
"""

from __future__ import annotations

import threading
import traceback
from concurrent.futures import FIRST_COMPLETED, ThreadPoolExecutor, wait
from dataclasses import dataclass, field
from typing import Callable

from repro.sandbox.limits import ResourceMonitor


@dataclass
class JobOutcome:
    """Result envelope for one pooled job."""

    index: int
    result: object = None
    error: str | None = None

    @property
    def ok(self) -> bool:
        return self.error is None


@dataclass
class ExperimentPool:
    """Run jobs concurrently, never exceeding the adaptive limit."""

    monitor: ResourceMonitor = field(default_factory=ResourceMonitor)
    parallelism: int | None = None

    def run(
        self,
        jobs: list[Callable[[], object]],
        on_result: Callable[[JobOutcome], None] | None = None,
    ) -> list[JobOutcome]:
        """Execute ``jobs``; outcomes are returned in submission order.

        Job exceptions are captured per-job (an experiment that breaks the
        harness must not sink the campaign).
        """
        if not jobs:
            return []
        hard_limit = self.parallelism or self.monitor.max_parallelism
        outcomes: list[JobOutcome | None] = [None] * len(jobs)
        lock = threading.Lock()

        def run_job(index: int) -> JobOutcome:
            try:
                result = jobs[index]()
                outcome = JobOutcome(index=index, result=result)
            except Exception:  # noqa: BLE001 - captured per job
                outcome = JobOutcome(index=index,
                                     error=traceback.format_exc())
            with lock:
                outcomes[index] = outcome
            if on_result is not None:
                on_result(outcome)
            return outcome

        with ThreadPoolExecutor(max_workers=hard_limit) as executor:
            pending: set = set()
            next_index = 0
            while next_index < len(jobs) or pending:
                limit = min(hard_limit, self._current_limit())
                while next_index < len(jobs) and len(pending) < limit:
                    pending.add(executor.submit(run_job, next_index))
                    next_index += 1
                if pending:
                    done, pending = wait(pending, timeout=0.5,
                                         return_when=FIRST_COMPLETED)
                    for future in done:
                        future.result()  # re-raise harness bugs, if any
        return [outcome for outcome in outcomes if outcome is not None]

    def _current_limit(self) -> int:
        if self.parallelism is not None:
            return self.parallelism
        return self.monitor.current_parallelism()
