"""Host resource monitoring for the parallel experiment pool.

The paper caps concurrency at N-1 containers and "further reduces the
number of parallel containers if it hits a threshold for memory and I/O
utilization" (§IV-B, after Winter et al.'s PAIN study).  This module
provides those signals from ``/proc`` (falling back gracefully on systems
without it).
"""

from __future__ import annotations

import os
from dataclasses import dataclass

#: Fraction of memory that must stay available before throttling kicks in.
DEFAULT_MEMORY_THRESHOLD = 0.15

#: Load average per core above which the pool backs off.
DEFAULT_LOAD_THRESHOLD = 2.0


def cpu_count() -> int:
    return os.cpu_count() or 1


def default_parallelism() -> int:
    """The paper's rule: at most N-1 parallel experiments on N cores."""
    return max(1, cpu_count() - 1)


def memory_available_fraction() -> float:
    """MemAvailable/MemTotal from /proc/meminfo (1.0 when unknown)."""
    try:
        fields: dict[str, int] = {}
        with open("/proc/meminfo", "r", encoding="ascii") as handle:
            for line in handle:
                name, _, rest = line.partition(":")
                value = rest.strip().split(" ")[0]
                if value.isdigit():
                    fields[name] = int(value)
        total = fields.get("MemTotal", 0)
        available = fields.get("MemAvailable", total)
        if total <= 0:
            return 1.0
        return available / total
    except OSError:
        return 1.0


def load_per_core() -> float:
    """1-minute load average divided by core count (0.0 when unknown)."""
    try:
        load1, _, _ = os.getloadavg()
    except OSError:
        return 0.0
    return load1 / cpu_count()


@dataclass
class ResourceMonitor:
    """Decides how many experiments may run concurrently right now."""

    max_parallelism: int = 0
    memory_threshold: float = DEFAULT_MEMORY_THRESHOLD
    load_threshold: float = DEFAULT_LOAD_THRESHOLD

    def __post_init__(self) -> None:
        if self.max_parallelism <= 0:
            self.max_parallelism = default_parallelism()

    def current_parallelism(self) -> int:
        """N-1, halved under memory pressure or excessive load."""
        limit = self.max_parallelism
        if memory_available_fraction() < self.memory_threshold:
            limit = max(1, limit // 2)
        if load_per_core() > self.load_threshold:
            limit = max(1, limit // 2)
        return limit
