"""Per-experiment process sandboxes (the container substitute, §IV-B).

Each experiment runs in a :class:`Sandbox`: a private copy of the image
tree with its own HOME/TMPDIR, a scrubbed environment, commands executed
in dedicated process groups, and teardown that kills every spawned process
and removes the tree — ProFIPy's "clean-up any resource leaked or
corrupted because of the injected fault" (stale processes, files).
"""

from __future__ import annotations

import glob as globmod
import os
import sys
from dataclasses import dataclass, field
from pathlib import Path

from repro.common.fsutil import remove_tree
from repro.common.procutil import (
    BackgroundProcess,
    CommandResult,
    run_command,
    spawn_background,
    wait_for,
)
from repro.sandbox.image import SandboxImage

#: Environment variables inherited from the host (everything else is
#: scrubbed so experiments cannot depend on ambient configuration).
_INHERITED_ENV = ("PATH", "LANG", "LC_ALL", "PYTHONHASHSEED", "LD_LIBRARY_PATH")


@dataclass
class Sandbox:
    """An isolated working directory plus process/environment management."""

    root: Path
    env: dict[str, str] = field(default_factory=dict)
    services: list[BackgroundProcess] = field(default_factory=list)
    _destroyed: bool = False

    @classmethod
    def create(
        cls,
        image: SandboxImage,
        base_dir: str | Path,
        name: str,
        env_overrides: dict[str, str] | None = None,
    ) -> "Sandbox":
        """Instantiate ``image`` into ``base_dir/name`` and prepare env."""
        root = Path(base_dir) / name
        image.instantiate(root)
        home = root / ".home"
        tmp = root / ".tmp"
        home.mkdir(exist_ok=True)
        tmp.mkdir(exist_ok=True)
        env = {key: os.environ[key] for key in _INHERITED_ENV
               if key in os.environ}
        env.update({
            "HOME": str(home),
            "TMPDIR": str(tmp),
            "PYTHONPATH": str(root),
            "PYTHONUNBUFFERED": "1",
            "PROFIPY_SANDBOX": name,
        })
        env.update(image.env)
        env.update(env_overrides or {})
        return cls(root=root, env=env)

    # -- command execution -----------------------------------------------------

    @property
    def python(self) -> str:
        """Interpreter used for target commands (the current one)."""
        return sys.executable

    def expand(self, command: str) -> str:
        """Substitute ``{python}`` and ``{sandbox}`` placeholders."""
        return command.format(python=self.python, sandbox=str(self.root))

    def run(self, command: str, timeout: float = 60.0) -> CommandResult:
        """Run a foreground command inside the sandbox."""
        self._check_alive()
        return run_command(
            self.expand(command), cwd=str(self.root), env=dict(self.env),
            timeout=timeout,
        )

    def start_service(self, command: str, name: str = "service",
                      ) -> BackgroundProcess:
        """Start a long-running service (e.g. the etcd server under test)."""
        self._check_alive()
        ordinal = len(self.services)
        stdout = self.root / f".{name}-{ordinal}.out"
        stderr = self.root / f".{name}-{ordinal}.err"
        service = spawn_background(
            self.expand(command), cwd=str(self.root), env=dict(self.env),
            stdout_path=str(stdout), stderr_path=str(stderr),
        )
        self.services.append(service)
        return service

    def services_alive(self) -> bool:
        """True when every started service process is still running."""
        return all(service.alive() for service in self.services)

    def wait_for_file(self, rel_path: str, timeout: float = 10.0) -> bool:
        """Wait until a file appears and is non-empty (e.g. a port file)."""
        path = self.root / rel_path

        def ready() -> bool:
            try:
                return path.stat().st_size > 0
            except OSError:
                return False

        return wait_for(ready, timeout=timeout)

    # -- file helpers -------------------------------------------------------------

    def path(self, rel_path: str) -> Path:
        return self.root / rel_path

    def write_file(self, rel_path: str, content: str) -> Path:
        path = self.root / rel_path
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text(content, encoding="utf-8")
        return path

    def read_file(self, rel_path: str) -> str:
        return (self.root / rel_path).read_text(encoding="utf-8",
                                                errors="replace")

    def collect_logs(self, patterns: list[str]) -> dict[str, str]:
        """Gather log files matching ``patterns`` (relative globs)."""
        logs: dict[str, str] = {}
        for pattern in patterns:
            for match in sorted(globmod.glob(str(self.root / pattern))):
                rel = os.path.relpath(match, self.root)
                try:
                    with open(match, "r", encoding="utf-8",
                              errors="replace") as handle:
                        logs[rel] = handle.read()
                except OSError:
                    continue
        return logs

    def service_logs(self) -> dict[str, str]:
        """stdout/stderr captured from every service."""
        logs: dict[str, str] = {}
        for service in self.services:
            for path in (service.stdout_path, service.stderr_path):
                rel = os.path.relpath(path, self.root)
                try:
                    with open(path, "r", encoding="utf-8",
                              errors="replace") as handle:
                        logs[rel] = handle.read()
                except OSError:
                    continue
        return logs

    # -- teardown -----------------------------------------------------------------

    def destroy(self) -> None:
        """Kill services and remove the tree (idempotent)."""
        if self._destroyed:
            return
        for service in self.services:
            service.terminate()
        remove_tree(self.root)
        self._destroyed = True

    def _check_alive(self) -> None:
        if self._destroyed:
            raise RuntimeError(f"sandbox {self.root} already destroyed")

    def __enter__(self) -> "Sandbox":
        return self

    def __exit__(self, *exc_info) -> None:
        self.destroy()
