"""Sandboxed execution: the container-based environment substitute."""

from repro.sandbox.image import ImageBuildError, SandboxImage
from repro.sandbox.limits import (
    ResourceMonitor,
    default_parallelism,
    load_per_core,
    memory_available_fraction,
)
from repro.sandbox.pool import ExperimentPool, JobOutcome
from repro.sandbox.sandbox import Sandbox

__all__ = [
    "ExperimentPool",
    "ImageBuildError",
    "JobOutcome",
    "ResourceMonitor",
    "Sandbox",
    "SandboxImage",
    "default_parallelism",
    "load_per_core",
    "memory_available_fraction",
]
